"""Incremental updates: deltas, routing, warm-start retrains, serving growth.

The contracts under test:

* :class:`KGDelta` is validated and immutable; ``pair.apply_delta`` is pure
  (vocabulary append-only, the input pair untouched);
* :func:`route_delta` touches exactly the pieces a delta's endpoints live
  in — one-piece deltas retrain one piece, a cross-piece gold link triggers
  both affected pieces and only those;
* an incremental campaign resumed from disk is byte-identical to one that
  never stopped (warm-start transplant is a pure function of checkpoint
  bytes + updated pair + config);
* serving absorbs pure-growth deltas — merged campaign snapshots included
  (per-piece fold contexts) — and refuses what genuinely needs a retrain.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

import numpy as np
import pytest

from repro import (
    DAAKG,
    DAAKGConfig,
    KGDelta,
    PartitionConfig,
    PartitionedCampaign,
    serve,
)
from repro.active.loop import ActiveLearningConfig
from repro.active.pool import PoolConfig
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.core.daakg import augment_working_kgs
from repro.datasets import make_large_world_pair
from repro.embedding.trainer import EmbeddingTrainingConfig
from repro.inference.power import InferencePowerConfig
from repro.kg.elements import ElementKind
from repro.kg.pair import SplitRatios
from repro.kg.partition import partition_pair
from repro.persistence.checkpoint import load_checkpoint, save_checkpoint
from repro.serving import AlignmentService, ServingFrontend
from repro.serving.service import ServingError
from repro.updates import DeltaError, route_delta, warm_start_pipeline

NUM_ENTITIES = 160
NUM_COMMUNITIES = 2


def world_pair():
    pair = make_large_world_pair(
        NUM_ENTITIES,
        num_relations=6,
        mean_out_degree=4.0,
        seed=0,
        shared_topology=True,
        num_communities=NUM_COMMUNITIES,
        inter_community_fraction=0.05,
    )
    pair.split_entity_matches(SplitRatios(train=0.3, valid=0.1, test=0.6), seed=0)
    return pair


def small_config() -> DAAKGConfig:
    return DAAKGConfig(
        base_model="transe",
        entity_dim=12,
        class_dim=4,
        pretrain=EmbeddingTrainingConfig(epochs=2),
        alignment=AlignmentTrainingConfig(
            rounds=1, epochs_per_round=3, num_negatives=3,
            embedding_batches_per_round=1, embedding_batch_size=256,
        ),
        pool=PoolConfig(top_n=10),
        inference=InferencePowerConfig(max_hops=2, power_threshold=0.5),
        similarity_backend="sharded",
        seed=0,
    )


def small_loop() -> ActiveLearningConfig:
    return ActiveLearningConfig(batch_size=8, num_batches=1, fine_tune_epochs=2)


def make_campaign(num_partitions: int = NUM_COMMUNITIES) -> PartitionedCampaign:
    return PartitionedCampaign(
        world_pair(),
        small_config(),
        strategy="uncertainty",
        active_config=small_loop(),
        partition=PartitionConfig(num_partitions=num_partitions, workers=1, executor="serial"),
    )


def piece_of(campaign: PartitionedCampaign, name: str, side: int) -> int:
    membership = campaign.partition.membership()[side - 1]
    return membership[name]


def growth_delta(pair, piece_kg1_entity: str, piece_kg2_entity: str) -> KGDelta:
    """One new gold-linked entity pair attached next to the given anchors."""
    return KGDelta(
        added_entities_1=("lw1:new",),
        added_entities_2=("lw2:new",),
        added_triples_1=(("lw1:new", pair.kg1.relations[0], piece_kg1_entity),),
        added_triples_2=(("lw2:new", pair.kg2.relations[0], piece_kg2_entity),),
        added_gold_links=(("lw1:new", "lw2:new"),),
    )


@pytest.fixture(scope="module")
def trained_campaign() -> PartitionedCampaign:
    campaign = make_campaign()
    campaign.run()
    return campaign


# ------------------------------------------------------------------- deltas
def test_delta_validation():
    with pytest.raises(DeltaError, match="duplicate"):
        KGDelta(added_entities_1=("a", "a"))
    with pytest.raises(DeltaError, match="added and removed"):
        KGDelta(added_triples_1=(("a", "r", "b"),), removed_triples_1=(("a", "r", "b"),))
    with pytest.raises(DeltaError, match="added and retracted"):
        KGDelta(added_gold_links=(("a", "b"),), retracted_gold_links=(("a", "b"),))
    with pytest.raises(DeltaError, match="left endpoints"):
        KGDelta(added_gold_links=(("a", "b"), ("a", "c")))
    with pytest.raises(DeltaError, match="side"):
        KGDelta.single_entity("x", [("x", "r", "y")], side=3)
    assert KGDelta.empty().is_empty
    delta = KGDelta.single_entity("x", [("x", "r", "y")])
    assert not delta.is_empty
    assert delta.summary()["added_entities_2"] == 1
    assert delta.entities(2) == ("x",)
    assert delta.triples(2) == (("x", "r", "y"),)


def test_apply_delta_is_pure_and_append_only():
    pair = world_pair()
    before_entities = list(pair.kg1.entities)
    before_triples = len(pair.kg1.triples)
    victim = pair.kg1.triples[0].as_tuple()
    delta = KGDelta(
        added_entities_1=("lw1:new",),
        added_triples_1=(("lw1:new", "brand_new_relation", before_entities[3]),),
        removed_triples_1=(victim,),
    )
    updated = pair.apply_delta(delta)
    # purity: the input pair is untouched
    assert list(pair.kg1.entities) == before_entities
    assert len(pair.kg1.triples) == before_triples
    # append-only vocabulary: old ids survive, new names at the end
    assert updated.kg1.entities[: len(before_entities)] == before_entities
    assert updated.kg1.entities[-1] == "lw1:new"
    assert updated.kg1.relations[-1] == "brand_new_relation"
    assert victim not in {t.as_tuple() for t in updated.kg1.triples}


def test_apply_delta_gold_links_and_errors():
    pair = world_pair()
    a, b = pair.entity_alignment.pairs[0]
    updated = pair.apply_delta(
        KGDelta(
            added_entities_1=("lw1:new",),
            added_entities_2=("lw2:new",),
            added_triples_1=(("lw1:new", pair.kg1.relations[0], pair.kg1.entities[0]),),
            added_triples_2=(("lw2:new", pair.kg2.relations[0], pair.kg2.entities[0]),),
            retracted_gold_links=((a, b),),
            added_gold_links=(("lw1:new", "lw2:new"),),
        )
    )
    assert (a, b) not in updated.entity_alignment
    assert ("lw1:new", "lw2:new") in updated.entity_alignment
    # a freshly asserted link is supervision: it joins the train split
    assert ("lw1:new", "lw2:new") in updated.train_entity_pairs
    assert (a, b) not in updated.train_entity_pairs
    assert (a, b) not in updated.test_entity_pairs
    with pytest.raises(DeltaError, match="already exists"):
        pair.apply_delta(KGDelta(added_entities_1=(pair.kg1.entities[0],)))
    with pytest.raises(DeltaError, match="does not exist"):
        pair.apply_delta(KGDelta(removed_triples_1=(("no", "such", "triple"),)))
    with pytest.raises(DeltaError, match="already has a gold counterpart"):
        pair.apply_delta(KGDelta(added_gold_links=((a, pair.kg2.entities[1]),)))


# ------------------------------------------------------------------ routing
def test_route_delta_single_piece():
    pair = world_pair()
    partition = partition_pair(pair, PartitionConfig(num_partitions=2))
    membership_1, _ = partition.membership()
    anchor = partition.pieces[0].pair.kg1.entities[0]
    assert membership_1[anchor] == 0
    delta = KGDelta(
        added_entities_1=("lw1:new",),
        added_triples_1=(("lw1:new", pair.kg1.relations[0], anchor),),
    )
    routing = route_delta(partition, delta)
    assert routing.touched == (0,)
    assert set(routing.piece_deltas) == {0}
    assert routing.assignments_1 == {"lw1:new": 0}
    assert route_delta(partition, KGDelta.empty()).touched == ()


def test_route_delta_cross_piece_gold_link_touches_both_and_only_those():
    pair = world_pair()
    partition = partition_pair(pair, PartitionConfig(num_partitions=4))
    membership_1, membership_2 = partition.membership()
    # two existing gold pairs living in different pieces
    links = sorted(pair.entity_alignment.pairs)
    (a1, b1) = next(p for p in links if membership_1[p[0]] == 0)
    (a2, b2) = next(p for p in links if membership_1[p[0]] not in (0, membership_2[b1]))
    delta = KGDelta(
        retracted_gold_links=((a1, b1), (a2, b2)),
        added_gold_links=((a1, b2),),  # the new link crosses two pieces
    )
    routing = route_delta(partition, delta)
    assert set(routing.touched) == {membership_1[a1], membership_1[a2]}
    # the cross-piece link appears in NEITHER piece delta (cut semantics)
    for piece_delta in routing.piece_deltas.values():
        assert (a1, b2) not in piece_delta.added_gold_links
    with pytest.raises(DeltaError, match="unknown KG1 entity"):
        route_delta(partition, KGDelta(added_triples_1=(("ghost", "r", a1),)))


# ----------------------------------------------------------- campaign update
def test_apply_update_retrains_exactly_touched_piece(trained_campaign):
    campaign = trained_campaign
    anchor_1 = campaign.partition.pieces[0].pair.kg1.entities[0]
    anchor_2 = campaign.partition.pieces[0].pair.kg2.entities[0]
    touched_piece = piece_of(campaign, anchor_1, side=1)
    baseline = campaign.evaluate()["entity"].hits_at_1
    report = campaign.apply_update(growth_delta(campaign.dataset, anchor_1, anchor_2))
    assert report.touched == (touched_piece,)
    statuses = {r.index: r.status for r in report.result.partition_results}
    assert statuses[touched_piece] == "completed"
    for index, status in statuses.items():
        if index != touched_piece:
            assert status == "skipped"  # untouched pieces were not retrained
    assert campaign.incremental
    assert "lw1:new" in campaign.dataset.kg1.entity_index
    # the updated campaign still merges, evaluates and serves the new entity
    after = campaign.evaluate()["entity"].hits_at_1
    assert abs(after - baseline) <= 0.25
    service = serve(campaign)
    assert service.num_entities(1) == campaign.dataset.kg1.num_entities
    assert service.top_k_alignments(["lw1:new"], k=1)[0]
    # empty deltas are a no-op
    empty = campaign.apply_update(KGDelta.empty())
    assert empty.touched == () and empty.result is None


def test_resumed_incremental_campaign_byte_identical(tmp_path):
    anchor_pair = world_pair()
    anchor_1 = anchor_pair.kg1.entities[1]
    anchor_2 = anchor_pair.kg2.entities[1]
    d1 = growth_delta(anchor_pair, anchor_1, anchor_2)
    d2 = KGDelta(
        added_triples_1=(("lw1:new", anchor_pair.kg1.relations[1], anchor_1),),
    )

    straight = make_campaign()
    straight.run()
    straight.apply_update(d1)
    straight.apply_update(d2)

    interrupted = make_campaign()
    interrupted.run()
    interrupted.apply_update(d1)
    interrupted.save(str(tmp_path / "mid-update"))
    resumed = PartitionedCampaign.load(str(tmp_path / "mid-update"))
    assert resumed.incremental
    resumed.apply_update(d2)

    a = straight.merged_state().matrix(ElementKind.ENTITY)
    b = resumed.merged_state().matrix(ElementKind.ENTITY)
    assert a.shape == b.shape
    assert np.array_equal(a, b)  # byte-identical, not merely close
    for left, right in zip(straight.loops, resumed.loops):
        assert [r.selected for r in left.records] == [r.selected for r in right.records]


# --------------------------------------------------------------- warm start
def test_warm_start_transplants_rows_by_name(tmp_path):
    pair = world_pair()
    config = small_config()
    pipeline = DAAKG(pair, config)
    pipeline.fit()
    save_checkpoint(tmp_path / "old", pipeline)

    updated = pair.apply_delta(
        KGDelta(
            added_entities_1=("lw1:new",),
            added_triples_1=(("lw1:new", "fresh_relation", pair.kg1.entities[0]),),
        )
    )
    fresh = DAAKG(updated, config)
    counts = warm_start_pipeline(fresh, load_checkpoint(tmp_path / "old"))
    # the new relation shifts every inverse-relation index, so relation
    # parameters must be row-mapped, not copied
    assert counts["row_mapped"] >= 1
    assert counts["copied"] >= 1

    old_kg1, _, _ = augment_working_kgs(pair, config)
    new_kg1, _, _ = augment_working_kgs(updated, config)
    old_state = load_checkpoint(tmp_path / "old").section("model")
    new_state = fresh.model.state_dict()
    for key in old_state:
        if key.startswith("model1.") and old_state[key].shape[0] == len(old_kg1.relations):
            for name in old_kg1.relations:
                np.testing.assert_array_equal(
                    new_state[key][new_kg1.relation_index[name]],
                    old_state[key][old_kg1.relation_index[name]],
                )
            break
    else:  # pragma: no cover - config without relation-sized parameters
        pytest.fail("no relation-vocabulary parameter found to verify")


# ------------------------------------------------------------------ serving
def test_serving_apply_delta_merged_snapshot(trained_campaign):
    service = AlignmentService.from_campaign(trained_campaign)
    assert service._state.fold_in_supported  # merged snapshots support fold-in
    pair = trained_campaign.dataset
    anchor = trained_campaign.partition.pieces[0].pair.kg2.entities[0]
    owner_piece = piece_of(trained_campaign, anchor, side=2)
    token_before = service.state_token
    reports = service.apply_delta(
        KGDelta(
            added_entities_2=("lw2:cold",),
            added_triples_2=(("lw2:cold", pair.kg2.relations[0], anchor),),
        )
    )
    assert [r.name for r in reports] == ["lw2:cold"]
    assert service.state_token != token_before
    # the folded column is the owning piece's embedding channel, zero for
    # rows of every other piece (no cross-piece evidence)
    foreign = next(
        piece.pair.kg1.entities[0]
        for piece in trained_campaign.partition.pieces
        if piece.index != owner_piece
    )
    local = trained_campaign.partition.pieces[owner_piece].pair.kg1.entities[0]
    scores = service.score_pairs([(foreign, "lw2:cold"), (local, "lw2:cold")])
    assert scores[0] == 0.0
    assert scores[1] != 0.0
    # a second fold can neighbour on the first
    service.apply_delta(
        KGDelta(
            added_entities_2=("lw2:cold2",),
            added_triples_2=(("lw2:cold2", pair.kg2.relations[0], "lw2:cold"),),
        )
    )
    assert service.num_entities(2) == len(service._state.entity_names_2)


def test_serving_apply_delta_refuses_non_growth(trained_campaign):
    service = AlignmentService.from_campaign(trained_campaign)
    pair = trained_campaign.dataset
    victim = pair.kg1.triples[0].as_tuple()
    with pytest.raises(ServingError, match="retrain"):
        service.apply_delta(KGDelta(removed_triples_1=(victim,)))
    gold = pair.entity_alignment.pairs[0]
    with pytest.raises(ServingError, match="retrain"):
        service.apply_delta(KGDelta(retracted_gold_links=(gold,)))
    with pytest.raises(ServingError, match="existing"):
        service.apply_delta(
            KGDelta(added_triples_1=((pair.kg1.entities[0], pair.kg1.relations[0],
                                      pair.kg1.entities[1]),))
        )
    with pytest.raises(ServingError, match="no side-2 triples"):
        service.apply_delta(KGDelta(added_entities_2=("lw2:orphan",)))


def test_serving_fold_spanning_pieces_is_refused(trained_campaign):
    service = AlignmentService.from_campaign(trained_campaign)
    pieces = trained_campaign.partition.pieces
    a = pieces[0].pair.kg2.entities[0]
    b = pieces[1].pair.kg2.entities[0]
    relation = trained_campaign.dataset.kg2.relations[0]
    with pytest.raises(ServingError, match="spans multiple partitions"):
        service.apply_delta(
            KGDelta(
                added_entities_2=("lw2:spanner",),
                added_triples_2=(("lw2:spanner", relation, a), ("lw2:spanner", relation, b)),
            )
        )


def test_fold_in_legacy_shim_warns_and_delegates(trained_campaign):
    service = AlignmentService.from_campaign(trained_campaign)
    anchor = trained_campaign.partition.pieces[0].pair.kg2.entities[1]
    relation = trained_campaign.dataset.kg2.relations[0]
    with pytest.warns(DeprecationWarning, match="apply_delta"):
        report = service.fold_in("lw2:legacy", [("lw2:legacy", relation, anchor)])
    assert report.name == "lw2:legacy"
    assert report.side == 2
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError, match="side"):
            service.fold_in("x", [("x", relation, anchor)], side=3)
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ServingError, match="at least one triple"):
            service.fold_in("x", [])


def test_fold_in_unsupported_state_raises(trained_campaign):
    service = AlignmentService.from_campaign(trained_campaign)
    # a genuinely degraded snapshot: neither per-side models nor piece
    # contexts — e.g. a foreign snapshot that shipped matrices only
    service.hot_swap(
        dc_replace(
            service._state, model_1=None, model_2=None, pieces=None,
            fold_in_supported=False,
        )
    )
    with pytest.raises(ServingError, match="not supported"):
        service.apply_delta(KGDelta.single_entity("x", [("x", "r", "y")]))
    assert not service._state.fold_in_supported


# ------------------------------------------------------------- serve() entry
def test_serve_unified_entry_point(trained_campaign, tmp_path):
    campaign_service = serve(trained_campaign)
    assert isinstance(campaign_service, AlignmentService)

    pipeline = trained_campaign.pipeline(0)
    assert isinstance(serve(pipeline), AlignmentService)

    save_checkpoint(tmp_path / "pipeline", pipeline)
    from_ckpt = serve(tmp_path / "pipeline")
    assert from_ckpt.state_token.startswith("ckpt-")

    trained_campaign.save(str(tmp_path / "campaign"))
    from_campaign_dir = serve(tmp_path / "campaign")
    assert from_campaign_dir.num_entities(1) == campaign_service.num_entities(1)

    front = serve(trained_campaign, frontend=True)
    try:
        assert isinstance(front, ServingFrontend)
        uri = trained_campaign.dataset.kg1.entities[0]
        answer = front.submit_top_k(uri, k=2).result(timeout=10.0)
        assert len(answer) == 2
    finally:
        front.stop()
