"""Tests for the KG embedding models and their trainer."""

import numpy as np
import pytest

from repro.embedding import (
    CompGCN,
    EmbeddingTrainingConfig,
    EntityClassScorer,
    KGEmbeddingTrainer,
    MODEL_REGISTRY,
    RotatE,
    TransE,
    create_embedding_model,
)

MODELS = ["transe", "rotate", "compgcn"]


@pytest.fixture(scope="module")
def train_kg(tiny_pair):
    # session-scoped tiny_pair comes from conftest; reuse its first KG augmented
    return tiny_pair.kg1.with_inverse_relations()


# NB: tiny_pair is session-scoped, so redefine a module fixture indirection.
@pytest.fixture(scope="module")
def models(train_kg):
    return {name: create_embedding_model(name, train_kg, dim=8, rng=0) for name in MODELS}


class TestRegistry:
    def test_registry_contains_paper_models(self):
        assert set(MODEL_REGISTRY) == {"transe", "rotate", "compgcn"}

    def test_unknown_model_raises(self, train_kg):
        with pytest.raises(KeyError):
            create_embedding_model("nope", train_kg)


@pytest.mark.parametrize("name", MODELS)
class TestModelInterface:
    def test_triple_scores_shape_and_nonnegative(self, models, train_kg, name):
        scores = models[name].triple_scores(train_kg.triple_array)
        assert scores.shape == (train_kg.num_triples,)
        assert np.all(scores.numpy() >= 0)

    def test_entity_outputs_shape(self, models, train_kg, name):
        out = models[name].all_entity_outputs()
        assert out.shape[0] == train_kg.num_entities

    def test_relation_outputs_shape(self, models, train_kg, name):
        out = models[name].all_relation_outputs()
        assert out.shape[0] == train_kg.num_relations

    def test_entity_matrix_is_detached_copy(self, models, name):
        matrix = models[name].entity_matrix()
        matrix[0, 0] = 123.0
        assert models[name].entity_matrix()[0, 0] != 123.0

    def test_score_np_zero_at_solution(self, models, name):
        model = models[name]
        entities = model.entity_matrix()
        relations = model.relation_matrix()
        solution = model.solve_tail(entities[0], relations[0], entities, rng=0)
        predicted_tail = entities[0] + solution.translation
        score = model.score_np(entities[0], relations[0], predicted_tail)
        assert score <= solution.bound + 1.0

    def test_gradients_flow_through_triple_scores(self, models, train_kg, name):
        model = models[name]
        loss = model.triple_scores(train_kg.triple_array[:3]).sum()
        loss.backward()
        assert any(p.grad is not None for p in model.parameters())


class TestTransESpecifics:
    def test_solve_tail_is_exact(self, models):
        model = models["transe"]
        entities = model.entity_matrix()
        relations = model.relation_matrix()
        solution = model.solve_tail(entities[1], relations[2], entities)
        assert solution.bound == 0.0
        assert np.allclose(solution.translation, relations[2])

    def test_local_relation_embedding_is_difference(self, models):
        model = models["transe"]
        h, t = np.ones(8), np.full(8, 3.0)
        assert np.allclose(model.local_relation_embedding(h, t), 2.0)

    def test_renormalize_unit_norm(self, models):
        model = models["transe"]
        model.entity_embeddings.weight.data *= 5
        model.renormalize()
        norms = np.linalg.norm(model.entity_embeddings.weight.data, axis=1)
        assert np.allclose(norms, 1.0)


class TestRotatESpecifics:
    def test_requires_even_dimension(self, train_kg):
        with pytest.raises(ValueError):
            RotatE(train_kg, dim=7)

    def test_rotation_preserves_norm(self, models):
        model = models["rotate"]
        head = model.entity_matrix()[0]
        relation = model.relation_matrix()[0]
        rotated = model._rotate_np(head, relation)
        assert np.linalg.norm(rotated) == pytest.approx(np.linalg.norm(head), rel=1e-6)

    def test_local_relation_embedding_unit_modulus(self, models):
        model = models["rotate"]
        h, t = model.entity_matrix()[0], model.entity_matrix()[1]
        local = model.local_relation_embedding(h, t)
        half = model.half
        modulus = np.sqrt(local[:half] ** 2 + local[half:] ** 2)
        assert np.allclose(modulus, 1.0, atol=1e-6)


class TestCompGCNSpecifics:
    def test_shared_weights_reuse_layer_objects(self, train_kg):
        base = CompGCN(train_kg, dim=8, num_layers=1, rng=0)
        shared = CompGCN(train_kg, dim=8, num_layers=1, rng=1, share_weights_with=base)
        assert shared.w_in[0] is base.w_in[0]

    def test_shared_weights_dimension_mismatch_raises(self, train_kg):
        base = CompGCN(train_kg, dim=8, num_layers=1, rng=0)
        with pytest.raises(ValueError):
            CompGCN(train_kg, dim=16, num_layers=1, rng=1, share_weights_with=base)

    def test_layer_count_validation(self, train_kg):
        with pytest.raises(ValueError):
            CompGCN(train_kg, dim=8, num_layers=0)


class TestEntityClassScorer:
    def test_scores_shape(self, models, train_kg):
        scorer = EntityClassScorer(train_kg, entity_dim=8, class_dim=4, rng=0)
        embeddings = models["transe"].entity_output(np.array([0, 1, 2]))
        scores = scorer.scores(embeddings, np.array([0, 1, 0]))
        assert scores.shape == (3,)
        assert np.all(scores.numpy() >= 0)

    def test_class_embeddings_shape(self, train_kg):
        scorer = EntityClassScorer(train_kg, entity_dim=8, class_dim=4, rng=0)
        assert scorer.all_class_embeddings().shape == (train_kg.num_classes, 8)
        assert scorer.class_embedding_dim == 8

    def test_invalid_class_dim(self, train_kg):
        with pytest.raises(ValueError):
            EntityClassScorer(train_kg, entity_dim=8, class_dim=0)


class TestTrainer:
    @pytest.mark.parametrize("name", MODELS)
    def test_training_reduces_losses(self, train_kg, name):
        model = create_embedding_model(name, train_kg, dim=8, rng=0)
        scorer = EntityClassScorer(train_kg, entity_dim=8, class_dim=4, rng=0)
        trainer = KGEmbeddingTrainer(
            train_kg, model, scorer, EmbeddingTrainingConfig(epochs=6, batch_size=64), seed=0
        )
        history = trainer.train()
        assert len(history.er_loss) == 6
        assert history.er_loss[-1] <= history.er_loss[0]
        assert history.ec_loss[-1] <= history.ec_loss[0] + 1e-6

    def test_training_without_class_scorer(self, train_kg):
        model = TransE(train_kg, dim=8, rng=0)
        trainer = KGEmbeddingTrainer(
            train_kg, model, None, EmbeddingTrainingConfig(epochs=2, batch_size=64), seed=0
        )
        history = trainer.train()
        assert all(value == 0.0 for value in history.ec_loss)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EmbeddingTrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            EmbeddingTrainingConfig(margin_er=-1)
