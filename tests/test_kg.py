"""Tests for the KG substrate: graph model, pairs, IO, statistics and sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kg import (
    AlignedKGPair,
    ElementKind,
    GoldAlignment,
    KnowledgeGraph,
    NegativeSampler,
    SplitRatios,
    compute_statistics,
    load_openea_directory,
    relation_functionality,
    save_openea_directory,
)
from repro.kg.elements import Triple, TypeTriple, base_relation, is_inverse_relation
from repro.kg.graph import KGError
from repro.kg.sampling import corrupt_match_pairs
from repro.kg.statistics import entity_pagerank, inverse_relation_functionality


class TestElements:
    def test_triple_reversed(self):
        t = Triple("a", "r", "b").reversed()
        assert t == Triple("b", "r^-1", "a")

    def test_inverse_relation_helpers(self):
        assert is_inverse_relation("r^-1")
        assert not is_inverse_relation("r")
        assert base_relation("r^-1") == "r"
        assert base_relation("r") == "r"

    def test_type_triple_as_tuple(self):
        assert TypeTriple("e", "C").as_tuple() == ("e", "type", "C")


class TestKnowledgeGraph:
    def test_counts(self, tiny_kg):
        assert tiny_kg.num_entities == 5
        assert tiny_kg.num_relations == 3
        assert tiny_kg.num_classes == 2
        assert tiny_kg.num_triples == 6
        assert tiny_kg.num_type_triples == 5

    def test_lookups(self, tiny_kg):
        assert tiny_kg.entity_name(tiny_kg.entity_id("a")) == "a"
        assert tiny_kg.relation_name(tiny_kg.relation_id("likes")) == "likes"
        assert tiny_kg.class_name(tiny_kg.class_id("Person")) == "Person"

    def test_unknown_lookup_raises(self, tiny_kg):
        with pytest.raises(KGError):
            tiny_kg.entity_id("nope")
        with pytest.raises(KGError):
            tiny_kg.relation_id("nope")
        with pytest.raises(KGError):
            tiny_kg.class_id("nope")

    def test_adjacency(self, tiny_kg):
        a = tiny_kg.entity_id("a")
        b = tiny_kg.entity_id("b")
        assert (tiny_kg.relation_id("likes"), b) in tiny_kg.out_edges(a)
        assert a not in tiny_kg.neighbors(a)
        assert b in tiny_kg.neighbors(a)
        assert tiny_kg.entity_degree(a) == 2

    def test_classes_of_and_members(self, tiny_kg):
        a = tiny_kg.entity_id("a")
        person = tiny_kg.class_id("Person")
        assert person in tiny_kg.classes_of(a)
        assert a in tiny_kg.entities_of_class(person)

    def test_triples_of_relation(self, tiny_kg):
        likes = tiny_kg.relation_id("likes")
        rows = tiny_kg.triples_of_relation(likes)
        assert rows.shape == (2, 3)
        assert np.all(rows[:, 1] == likes)

    def test_relations_of_entity(self, tiny_kg):
        c = tiny_kg.entity_id("c")
        names = {tiny_kg.relation_name(r) for r in tiny_kg.relations_of_entity(c)}
        assert names == {"likes", "knows", "locatedIn"}

    def test_with_inverse_relations_doubles_triples(self, tiny_kg):
        augmented = tiny_kg.with_inverse_relations()
        assert augmented.num_triples == 2 * tiny_kg.num_triples
        assert augmented.num_relations == 2 * tiny_kg.num_relations
        # idempotent
        again = augmented.with_inverse_relations()
        assert again.num_triples == augmented.num_triples

    def test_subgraph_of_entities(self, tiny_kg):
        sub = tiny_kg.subgraph_of_entities(["a", "b", "c"])
        assert set(sub.entities) == {"a", "b", "c"}
        assert all(t.head in sub.entities and t.tail in sub.entities for t in sub.triples)
        assert "locatedIn" not in sub.relations

    def test_subgraph_unknown_entity_raises(self, tiny_kg):
        with pytest.raises(KGError):
            tiny_kg.subgraph_of_entities(["a", "zzz"])

    def test_duplicate_vocabulary_rejected(self):
        with pytest.raises(KGError):
            KnowledgeGraph("bad", entities=["a", "a"], relations=[], classes=[])

    def test_triple_referencing_unknown_entity_rejected(self):
        with pytest.raises(KGError):
            KnowledgeGraph(
                "bad", entities=["a"], relations=["r"], classes=[], triples=[Triple("a", "r", "b")]
            )

    def test_from_triples_preserves_first_appearance_order(self):
        kg = KnowledgeGraph.from_triples("t", [("x", "r", "y"), ("y", "s", "z")])
        assert kg.entities == ["x", "y", "z"]
        assert kg.relations == ["r", "s"]


class TestAlignedPair:
    def test_summary_counts(self, tiny_pair):
        summary = tiny_pair.summary()
        assert summary["entity_matches"] == 5
        assert summary["relation_matches"] == 2
        assert summary["class_matches"] == 2

    def test_match_id_arrays(self, tiny_pair):
        ids = tiny_pair.entity_match_ids()
        assert ids.shape == (5, 2)
        assert tiny_pair.relation_match_ids().shape == (2, 2)
        assert tiny_pair.class_match_ids().shape == (2, 2)

    def test_gold_alignment_lookup(self, tiny_pair):
        gold = tiny_pair.gold(ElementKind.ENTITY)
        assert gold.counterpart_of_left("l:a") == "r:1"
        assert gold.counterpart_of_right("r:1") == "l:a"
        assert ("l:a", "r:1") in gold
        assert ("l:a", "r:2") not in gold

    def test_split_is_partition(self, tiny_pair):
        total = (
            len(tiny_pair.train_entity_pairs)
            + len(tiny_pair.valid_entity_pairs)
            + len(tiny_pair.test_entity_pairs)
        )
        assert total == len(tiny_pair.entity_alignment)
        assert not set(tiny_pair.train_entity_pairs) & set(tiny_pair.test_entity_pairs)

    def test_split_ratio_validation(self):
        with pytest.raises(ValueError):
            SplitRatios(train=0.5, valid=0.5, test=0.5)

    def test_dangling_entities(self, tiny_pair):
        assert tiny_pair.dangling_entities_kg1() == set()
        assert tiny_pair.dangling_entities_kg2() == set()

    def test_alignment_referencing_unknown_element_rejected(self, tiny_pair):
        with pytest.raises(KGError):
            AlignedKGPair(
                name="bad",
                kg1=tiny_pair.kg1,
                kg2=tiny_pair.kg2,
                entity_alignment=GoldAlignment(ElementKind.ENTITY, [("l:a", "r:unknown")]),
                relation_alignment=GoldAlignment(ElementKind.RELATION, []),
                class_alignment=GoldAlignment(ElementKind.CLASS, []),
            )


class TestIO:
    def test_openea_roundtrip(self, tiny_pair, tmp_path):
        directory = tmp_path / "dataset"
        save_openea_directory(tiny_pair, directory)
        loaded = load_openea_directory(directory)
        assert loaded.summary() == tiny_pair.summary()
        assert set(loaded.entity_alignment.pairs) == set(tiny_pair.entity_alignment.pairs)

    def test_openea_roundtrip_full_fidelity(self, tiny_pair, tmp_path):
        """Exact content per side: triples, type triples, links and splits."""
        directory = tmp_path / "dataset"
        save_openea_directory(tiny_pair, directory)
        assert (directory / "type_triples_1").is_file()
        assert (directory / "type_triples_2").is_file()
        loaded = load_openea_directory(directory, name=tiny_pair.name)
        assert loaded.name == tiny_pair.name
        for got, want in ((loaded.kg1, tiny_pair.kg1), (loaded.kg2, tiny_pair.kg2)):
            assert set(t.as_tuple() for t in got.triples) == set(
                t.as_tuple() for t in want.triples
            )
            assert set((tt.entity, tt.cls) for tt in got.type_triples) == set(
                (tt.entity, tt.cls) for tt in want.type_triples
            )
            assert set(got.classes) == set(want.classes)
        assert loaded.relation_alignment.pairs == tiny_pair.relation_alignment.pairs
        assert loaded.class_alignment.pairs == tiny_pair.class_alignment.pairs
        # the entity-match split survives the round trip (ent_links_{train,test})
        assert loaded.train_entity_pairs == tiny_pair.train_entity_pairs
        assert loaded.valid_entity_pairs == tiny_pair.valid_entity_pairs
        assert loaded.test_entity_pairs == tiny_pair.test_entity_pairs

    def test_openea_roundtrip_twice_is_stable(self, tiny_pair, tmp_path):
        """Save → load → save again produces byte-identical files."""
        first = tmp_path / "first"
        second = tmp_path / "second"
        save_openea_directory(tiny_pair, first)
        save_openea_directory(load_openea_directory(first), second)
        for name in ("rel_triples_1", "rel_triples_2", "type_triples_1",
                     "type_triples_2", "ent_links", "rel_links", "cls_links"):
            assert (first / name).read_text() == (second / name).read_text()

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_openea_directory(tmp_path / "missing")

    def test_malformed_file_raises(self, tmp_path):
        directory = tmp_path / "broken"
        directory.mkdir()
        (directory / "rel_triples_1").write_text("only\ttwo\n")
        with pytest.raises(ValueError):
            load_openea_directory(directory)


class TestStatistics:
    def test_compute_statistics(self, tiny_kg):
        stats = compute_statistics(tiny_kg)
        assert stats.num_entities == 5
        assert stats.max_entity_degree >= stats.mean_entity_degree
        assert stats.relation_counts["likes"] == 2

    def test_relation_functionality_bounds(self, tiny_kg):
        functionality = relation_functionality(tiny_kg)
        inverse = inverse_relation_functionality(tiny_kg)
        for value in list(functionality.values()) + list(inverse.values()):
            assert 0.0 < value <= 1.0

    def test_locatedin_is_not_inverse_functional(self, tiny_kg):
        # two different heads share the same tail "d"
        inverse = inverse_relation_functionality(tiny_kg)
        assert inverse["locatedIn"] == pytest.approx(0.5)

    def test_pagerank_is_distribution(self, tiny_kg):
        scores = entity_pagerank(tiny_kg, iterations=20)
        assert scores.shape == (tiny_kg.num_entities,)
        assert scores.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(scores > 0)


class TestSampling:
    def test_corrupt_tails_shape_and_heads_preserved(self, tiny_kg):
        sampler = NegativeSampler(tiny_kg, seed=0)
        negatives = sampler.corrupt_tails(tiny_kg.triple_array, num_negatives=2)
        assert negatives.shape == (tiny_kg.num_triples * 2, 3)
        assert np.all(negatives[:, 0] == np.repeat(tiny_kg.triple_array[:, 0], 2))

    def test_corrupt_tails_avoids_true_triples_mostly(self, tiny_kg):
        sampler = NegativeSampler(tiny_kg, seed=1)
        true = {tuple(row) for row in tiny_kg.triple_array.tolist()}
        negatives = sampler.corrupt_tails(tiny_kg.triple_array, num_negatives=3)
        overlap = sum(1 for row in negatives.tolist() if tuple(row) in true)
        assert overlap <= len(negatives) * 0.2

    def test_corrupt_class_entities(self, tiny_kg):
        sampler = NegativeSampler(tiny_kg, seed=0)
        negatives = sampler.corrupt_class_entities(tiny_kg.type_array, num_negatives=1)
        assert negatives.shape == tiny_kg.type_array.shape
        assert np.all(negatives[:, 1] == tiny_kg.type_array[:, 1])

    def test_empty_inputs(self, tiny_kg):
        sampler = NegativeSampler(tiny_kg, seed=0)
        assert sampler.corrupt_tails(np.empty((0, 3), dtype=np.int64)).shape == (0, 3)
        assert sampler.corrupt_class_entities(np.empty((0, 2), dtype=np.int64)).shape == (0, 2)

    @given(st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_corrupt_match_pairs_changes_exactly_one_side(self, num_negatives):
        rng = np.random.default_rng(0)
        matches = np.array([[0, 0], [1, 1], [2, 2]])
        negatives = corrupt_match_pairs(matches, 10, 10, rng, num_negatives)
        positives = np.repeat(matches, num_negatives, axis=0)
        assert negatives.shape == positives.shape
        same_both = np.all(negatives == positives, axis=1)
        assert not same_both.any()
