"""The online AlignmentService: queries, caching, batching, swap, fold-in."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.kg.elements import ElementKind
from repro.serving import AlignmentService, ServingError


@pytest.fixture(scope="module")
def service(fitted_pipeline):
    return AlignmentService.from_pipeline(fitted_pipeline)


@pytest.fixture(scope="module")
def entity_matrix(fitted_pipeline):
    return fitted_pipeline.model.entity_similarity_matrix().copy()


@pytest.fixture(scope="module")
def value_tol(fitted_pipeline) -> float:
    """Tolerance when comparing served values against the full matrix.

    The dense backend serves slices of the very matrix being compared
    against, so equality is exact.  The sharded backend recomputes each
    served value from factored tiles, whose BLAS reductions can differ from
    the materialised matrix in the last ulp.
    """
    return 0.0 if fitted_pipeline.model.similarity.backend_name == "dense" else 1e-12


# ------------------------------------------------------------------- queries
def test_top_k_matches_engine_matrix(service, fitted_pipeline, entity_matrix, value_tol):
    uris = list(fitted_pipeline.kg1.entities[:4])
    results = service.top_k_alignments(uris, k=5)
    for uri, ranked in zip(uris, results):
        row = entity_matrix[fitted_pipeline.kg1.entity_id(uri)]
        assert len(ranked) == 5
        assert ranked[0][1] == pytest.approx(row.max(), abs=value_tol)
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)
        assert all(name in fitted_pipeline.kg2.entity_index for name, _ in ranked)


def test_score_pairs_matches_engine_matrix(service, fitted_pipeline, entity_matrix, value_tol):
    pairs = [
        (fitted_pipeline.kg1.entities[i], fitted_pipeline.kg2.entities[j])
        for i, j in ((0, 0), (1, 3), (5, 2))
    ]
    scores = service.score_pairs(pairs)
    for (left, right), score in zip(pairs, scores):
        i = fitted_pipeline.kg1.entity_id(left)
        j = fitted_pipeline.kg2.entity_id(right)
        assert score == pytest.approx(entity_matrix[i, j], abs=value_tol)


def test_pair_probabilities_match_full_matrix(service, fitted_pipeline, entity_matrix):
    expected = fitted_pipeline.calibrator.probability_matrix(
        entity_matrix, ElementKind.ENTITY
    )
    pairs = [(fitted_pipeline.kg1.entities[2], fitted_pipeline.kg2.entities[7])]
    probabilities = service.pair_probabilities(pairs)
    np.testing.assert_allclose(probabilities[0], expected[2, 7], rtol=0, atol=1e-12)


def test_unknown_uri_raises(service):
    with pytest.raises(ServingError, match="unknown KG1 entity"):
        service.top_k_alignments(["definitely-not-an-entity"], k=3)


# -------------------------------------------------------------------- caching
def test_lru_cache_hits_on_repeat(fitted_pipeline):
    service = AlignmentService.from_pipeline(fitted_pipeline)
    uris = list(fitted_pipeline.kg1.entities[:3])
    service.top_k_alignments(uris, k=4)
    assert service.stats.cache_hits == 0
    first = service.top_k_alignments(uris, k=4)
    assert service.stats.cache_hits == 3
    assert first == service.top_k_alignments(uris, k=4)


def test_cache_eviction_respects_capacity(fitted_pipeline):
    service = AlignmentService.from_pipeline(fitted_pipeline, cache_size=2)
    uris = list(fitted_pipeline.kg1.entities[:5])
    service.top_k_alignments(uris, k=3)
    assert len(service._cache) == 2


# ------------------------------------------------------------- micro-batching
def test_microbatching_resolves_on_flush(fitted_pipeline, entity_matrix, value_tol):
    service = AlignmentService.from_pipeline(fitted_pipeline, max_batch=100)
    uri = fitted_pipeline.kg1.entities[0]
    ticket_top = service.enqueue_top_k(uri, k=3)
    ticket_score = service.enqueue_score(uri, fitted_pipeline.kg2.entities[1])
    assert not ticket_top.ready and not ticket_score.ready
    resolved = service.flush()
    assert resolved == 2
    assert ticket_top.ready and ticket_score.ready
    assert ticket_top.value == service.top_k_alignments([uri], k=3)[0]
    assert ticket_score.value == pytest.approx(entity_matrix[0, 1], abs=value_tol)


def test_microbatching_auto_flushes_at_max_batch(fitted_pipeline):
    service = AlignmentService.from_pipeline(fitted_pipeline, max_batch=2)
    t1 = service.enqueue_top_k(fitted_pipeline.kg1.entities[0], k=2)
    assert not t1.ready
    t2 = service.enqueue_top_k(fitted_pipeline.kg1.entities[1], k=2)
    assert t1.ready and t2.ready  # second enqueue crossed the batch threshold


def test_bad_query_fails_only_its_own_ticket(fitted_pipeline):
    service = AlignmentService.from_pipeline(fitted_pipeline, max_batch=100)
    good = service.enqueue_top_k(fitted_pipeline.kg1.entities[0], k=2)
    bad = service.enqueue_top_k("no-such-entity", k=2)
    also_good = service.enqueue_score(
        fitted_pipeline.kg1.entities[1], fitted_pipeline.kg2.entities[1]
    )
    service.flush()
    assert good.ready and bad.ready and also_good.ready
    assert good.result() == service.top_k_alignments([fitted_pipeline.kg1.entities[0]], k=2)[0]
    assert np.isfinite(also_good.result())
    with pytest.raises(ServingError, match="unknown KG1 entity"):
        bad.result()


def test_in_memory_tokens_are_unique_per_snapshot(fitted_pipeline):
    a = AlignmentService.from_pipeline(fitted_pipeline)
    b = AlignmentService.from_pipeline(fitted_pipeline)
    assert a.state_token != b.state_token  # same pipeline, distinct snapshots


def test_ticket_result_flushes_lazily(fitted_pipeline):
    service = AlignmentService.from_pipeline(fitted_pipeline, max_batch=100)
    ticket = service.enqueue_top_k(fitted_pipeline.kg1.entities[2], k=2)
    value = ticket.result()
    assert ticket.ready
    assert value == service.top_k_alignments([fitted_pipeline.kg1.entities[2]], k=2)[0]


# ------------------------------------------------------------------- hot swap
def test_hot_swap_from_checkpoint(fitted_pipeline, tmp_path, value_tol):
    service = AlignmentService.from_pipeline(fitted_pipeline)
    token_before = service.state_token
    fitted_pipeline.save(tmp_path / "snap")
    token_after = service.hot_swap(tmp_path / "snap")
    assert token_after == service.state_token != token_before
    assert token_after.startswith("ckpt-")
    assert service.stats.swaps == 1
    # the swapped state serves the same frozen matrices
    uri = fitted_pipeline.kg1.entities[0]
    matrix = fitted_pipeline.model.entity_similarity_matrix()
    assert service.top_k_alignments([uri], k=1)[0][0][1] == pytest.approx(
        matrix[0].max(), abs=value_tol
    )


# -------------------------------------------------------------------- fold-in
def _clone_triples(kg, victim: int, new_name: str, limit: int = 6):
    triples = [
        (new_name, kg.relations[r], kg.entities[t]) for r, t in kg.out_edges(victim)[:limit]
    ]
    triples += [
        (kg.entities[h], kg.relations[r], new_name) for r, h in kg.in_edges(victim)[:limit]
    ]
    return triples


def test_fold_in_appends_column_and_scores_like_clone(fitted_pipeline, entity_matrix, value_tol):
    service = AlignmentService.from_pipeline(fitted_pipeline)
    kg2 = fitted_pipeline.kg2
    victim = max(range(kg2.num_entities), key=kg2.entity_degree)
    token_before = service.state_token
    n_before = service.num_entities(2)
    report = service.fold_in("folded:new", _clone_triples(kg2, victim, "folded:new"))
    assert service.num_entities(2) == n_before + 1
    assert report.index == n_before
    assert service.state_token != token_before
    assert service.stats.folds == 1
    # the clone of the best-matched entity should itself score well for the
    # same KG1 partner (embedding channel only, so not identical)
    partner = int(np.argmax(entity_matrix[:, victim]))
    partner_name = fitted_pipeline.kg1.entities[partner]
    clone_score = service.score_pairs([(partner_name, "folded:new")])[0]
    assert clone_score > 0.25
    # existing entities are untouched
    assert service.score_pairs([(partner_name, kg2.entities[victim])])[0] == pytest.approx(
        entity_matrix[partner, victim], abs=value_tol
    )


def test_fold_in_side_1_appends_row(fitted_pipeline):
    service = AlignmentService.from_pipeline(fitted_pipeline)
    kg1 = fitted_pipeline.kg1
    victim = max(range(kg1.num_entities), key=kg1.entity_degree)
    service.fold_in("folded:left", _clone_triples(kg1, victim, "folded:left"), side=1)
    ranked = service.top_k_alignments(["folded:left"], k=3)[0]
    assert len(ranked) == 3
    assert all(np.isfinite(score) for _, score in ranked)


def test_fold_in_cache_isolation(fitted_pipeline):
    # results cached before a fold-in must not be served for the new state
    service = AlignmentService.from_pipeline(fitted_pipeline)
    kg2 = fitted_pipeline.kg2
    uri = fitted_pipeline.kg1.entities[0]
    service.top_k_alignments([uri], k=2)
    victim = max(range(kg2.num_entities), key=kg2.entity_degree)
    service.fold_in("folded:iso", _clone_triples(kg2, victim, "folded:iso"))
    hits_before = service.stats.cache_hits
    service.top_k_alignments([uri], k=2)
    assert service.stats.cache_hits == hits_before  # token changed → cache miss


# ---------------------------------------------------------------- threading
def test_concurrent_queries_keep_exact_counters(fitted_pipeline):
    """Hammer the direct query API from many threads.

    The stats counters are lock-exact, so the totals must come out *equal*
    (not approximately equal — a lost ``+=`` update is exactly the bug the
    per-counter lock exists to prevent), and the LRU cache must respect its
    capacity under concurrent eviction.
    """
    service = AlignmentService.from_pipeline(fitted_pipeline, cache_size=16)
    kg1, kg2 = fitted_pipeline.kg1, fitted_pipeline.kg2
    uris = list(kg1.entities)
    threads, errors = [], []
    rounds, batch = 40, 8

    def hammer(offset: int) -> None:
        try:
            for round_index in range(rounds):
                base = (offset * rounds + round_index) % len(uris)
                chunk = [uris[(base + j) % len(uris)] for j in range(batch)]
                service.top_k_alignments(chunk, k=3)
                service.score_pairs([(chunk[0], kg2.entities[base % kg2.num_entities])])
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    for offset in range(6):
        threads.append(threading.Thread(target=hammer, args=(offset,)))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    # 6 threads x 40 rounds x (8 top-k uris + 1 score pair), counted exactly
    assert service.stats.queries == 6 * rounds * (batch + 1)
    assert len(service._cache) <= 16


def test_fold_in_rejects_bad_input(fitted_pipeline):
    service = AlignmentService.from_pipeline(fitted_pipeline)
    kg2 = fitted_pipeline.kg2
    existing = kg2.entities[0]
    with pytest.raises(ServingError, match="at least one triple"):
        service.fold_in("x", [])
    with pytest.raises(ServingError, match="already exists"):
        service.fold_in(existing, [("a", kg2.relations[0], existing)])
    with pytest.raises(ServingError, match="unknown side-2 relation"):
        service.fold_in("x", [("x", "no-such-relation", existing)])
    with pytest.raises(ServingError, match="must connect"):
        service.fold_in("x", [("ghost", kg2.relations[0], "phantom")])
