"""Tests for repro.utils: numeric helpers, RNG handling, timer and logging."""

import logging
import time

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    RandomState,
    Timer,
    cosine_similarity,
    cosine_similarity_matrix,
    ensure_rng,
    get_logger,
    l2_normalize,
    pairwise_sq_dists,
    softmax,
    stable_log,
    top_k_indices,
)
from repro.utils.math import reciprocal_rank
from repro.utils.rng import get_rng_state, set_rng_state, spawn


class TestMath:
    def test_l2_normalize_rows_have_unit_norm(self):
        x = np.random.default_rng(0).normal(size=(5, 3))
        norms = np.linalg.norm(l2_normalize(x), axis=1)
        assert np.allclose(norms, 1.0)

    def test_l2_normalize_zero_vector_is_safe(self):
        assert np.all(np.isfinite(l2_normalize(np.zeros((2, 3)))))

    def test_cosine_similarity_identical_vectors(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_cosine_similarity_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 2.0])) == pytest.approx(0.0)

    def test_cosine_similarity_zero_vector(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_cosine_similarity_matrix_matches_pairwise(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=(4, 3)), rng.normal(size=(6, 3))
        matrix = cosine_similarity_matrix(a, b)
        assert matrix.shape == (4, 6)
        assert matrix[2, 3] == pytest.approx(cosine_similarity(a[2], b[3]))

    def test_pairwise_sq_dists_diagonal_zero(self):
        x = np.random.default_rng(2).normal(size=(5, 4))
        d = pairwise_sq_dists(x, x)
        assert np.allclose(np.diag(d), 0.0, atol=1e-9)

    def test_pairwise_sq_dists_matches_norm(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        b = np.array([[3.0, 4.0]])
        d = pairwise_sq_dists(a, b)
        assert d[0, 0] == pytest.approx(25.0)

    def test_softmax_sums_to_one(self):
        p = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]), axis=1)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_softmax_temperature_sharpens(self):
        x = np.array([1.0, 2.0])
        hot = softmax(x, temperature=1.0)
        cold = softmax(x, temperature=0.1)
        assert cold[1] > hot[1]

    def test_softmax_rejects_nonpositive_temperature(self):
        with pytest.raises(ValueError):
            softmax(np.array([1.0]), temperature=0.0)

    def test_stable_log_handles_zero(self):
        assert np.isfinite(stable_log(np.array([0.0]))).all()

    def test_top_k_indices_largest(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        assert list(top_k_indices(scores, 2)) == [1, 3]

    def test_top_k_indices_smallest(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        assert list(top_k_indices(scores, 2, largest=False)) == [0, 2]

    def test_top_k_indices_k_larger_than_array(self):
        assert len(top_k_indices(np.array([1.0, 2.0]), 10)) == 2

    def test_top_k_indices_zero_k(self):
        assert len(top_k_indices(np.array([1.0, 2.0]), 0)) == 0

    def test_reciprocal_rank_best(self):
        assert reciprocal_rank(np.array([0.2, 0.9, 0.5]), 1) == pytest.approx(1.0)

    def test_reciprocal_rank_second(self):
        assert reciprocal_rank(np.array([0.2, 0.9, 0.5]), 2) == pytest.approx(0.5)

    @given(st.lists(st.floats(-10, 10), min_size=2, max_size=20))
    def test_softmax_is_probability_distribution(self, values):
        p = softmax(np.array(values))
        assert np.all(p >= 0)
        assert p.sum() == pytest.approx(1.0, abs=1e-9)

    @given(
        st.lists(st.floats(-5, 5), min_size=3, max_size=3),
        st.lists(st.floats(-5, 5), min_size=3, max_size=3),
    )
    def test_cosine_similarity_is_bounded(self, a, b):
        value = cosine_similarity(np.array(a), np.array(b))
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


class TestRng:
    def test_ensure_rng_from_int_is_deterministic(self):
        assert ensure_rng(7).integers(0, 100) == ensure_rng(7).integers(0, 100)

    def test_ensure_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_ensure_rng_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_spawn_children_are_independent_but_deterministic(self):
        a = spawn(ensure_rng(3), 2)
        b = spawn(ensure_rng(3), 2)
        assert a[0].integers(0, 1000) == b[0].integers(0, 1000)
        assert a[1].integers(0, 1000) == b[1].integers(0, 1000)

    def test_get_set_rng_state_resumes_stream(self):
        rng = ensure_rng(11)
        rng.random(17)  # advance past the seed position
        state = get_rng_state(rng)
        expected = rng.random(5)
        other = ensure_rng(999)
        set_rng_state(other, state)
        np.testing.assert_array_equal(other.random(5), expected)

    def test_rng_state_is_json_serialisable(self):
        import json

        rng = ensure_rng(4)
        rng.integers(0, 10, size=3)
        state = get_rng_state(rng)
        restored_state = json.loads(json.dumps(state))
        other = ensure_rng(None)
        set_rng_state(other, restored_state)
        np.testing.assert_array_equal(other.random(3), rng.random(3))

    def test_get_rng_state_is_a_snapshot(self):
        rng = ensure_rng(0)
        state = get_rng_state(rng)
        rng.random(10)  # advancing must not mutate the captured snapshot
        fresh = set_rng_state(ensure_rng(None), state)
        np.testing.assert_array_equal(
            fresh.random(3), set_rng_state(ensure_rng(None), state).random(3)
        )


class TestTimer:
    def test_context_manager_accumulates(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.005

    def test_start_stop_accumulates_across_calls(self):
        t = Timer()
        t.start()
        t.stop()
        first = t.elapsed
        t.start()
        t.stop()
        assert t.elapsed >= first

    def test_double_start_raises(self):
        t = Timer().start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        t.start()
        t.stop()
        t.reset()
        assert t.elapsed == 0.0


class TestLogging:
    def test_get_logger_is_namespaced(self):
        assert get_logger("foo").name == "repro.foo"

    def test_get_logger_keeps_repro_prefix(self):
        assert get_logger("repro.bar").name == "repro.bar"

    def test_root_logger_has_null_handler(self):
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)
