"""Campaign executor layer: selection, spec portability, parity, recovery.

The load-bearing guarantees:

* executor resolution is explicit — env beats config, ``"auto"`` maps to a
  concrete backend from (workers, pieces, cores) only;
* a :class:`PieceSpec` is a self-contained, picklable work unit, and the
  runtime knobs that shape it survive ``DAAKGConfig`` JSON round-trips;
* serial, thread and process backends produce **byte-identical** campaigns
  (merged top-k digests, eval scores, record sequences);
* a crashing piece is a resumable per-piece failure: the campaign checkpoint
  stays loadable and resume re-runs *only* the failed piece, converging to
  the same bytes as a run that never crashed.
"""

from __future__ import annotations

import hashlib
import json
import pickle

import numpy as np
import pytest

from repro import DAAKGConfig, PartitionConfig, PartitionedCampaign, make_benchmark
from repro.active.campaign import CampaignExecutionError
from repro.active.loop import ActiveLearningConfig
from repro.active.pool import PoolConfig
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.embedding.trainer import EmbeddingTrainingConfig
from repro.inference.power import InferencePowerConfig
from repro.kg.elements import ElementKind
from repro.kg.partition import CAMPAIGN_EXECUTOR_ENV, resolve_campaign_executor
from repro.runtime.executor import (
    POISON_ENV,
    PieceSpec,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    create_executor,
    effective_executor_name,
)

SCALE = 0.15
TOP_K = 5


def executor_pair():
    return make_benchmark("D-W", scale=SCALE, seed=3)


def executor_config(executor: str = "serial") -> DAAKGConfig:
    return DAAKGConfig(
        base_model="transe",
        entity_dim=16,
        class_dim=4,
        pretrain=EmbeddingTrainingConfig(epochs=2),
        alignment=AlignmentTrainingConfig(
            rounds=1, epochs_per_round=4, num_negatives=3,
            embedding_batches_per_round=1, embedding_batch_size=128,
        ),
        pool=PoolConfig(top_n=10),
        inference=InferencePowerConfig(max_hops=2, power_threshold=0.5),
        partition=PartitionConfig(num_partitions=2, workers=2, executor=executor),
        seed=3,
    )


LOOP_CONFIG = ActiveLearningConfig(batch_size=6, num_batches=1, fine_tune_epochs=3)


def make_campaign(executor: str) -> PartitionedCampaign:
    # resolve_env=False: these tests pin the backend under test, so the CI
    # leg that exports REPRO_CAMPAIGN_EXECUTOR must not override the sweep
    return PartitionedCampaign(
        executor_pair(),
        executor_config(executor),
        strategy="uncertainty",
        active_config=LOOP_CONFIG,
        resolve_env=False,
    )


def campaign_payload(campaign: PartitionedCampaign) -> str:
    """Everything that must not depend on the executor backend, as one blob."""
    merged = campaign.merged_state()
    table = merged.top_k_table(ElementKind.ENTITY, TOP_K)
    digest = hashlib.sha256()
    for array in (
        table.left_indices, table.left_values, table.right_indices, table.right_values
    ):
        digest.update(np.ascontiguousarray(array).tobytes())
    scores = campaign.evaluate()
    records = [
        [
            [r.batch_index, r.labels_used, r.matches_labelled, r.entity_scores.as_dict()]
            for r in campaign.loops[i].records
        ]
        for i in range(campaign.num_partitions)
    ]
    return json.dumps(
        {
            "topk_sha256": digest.hexdigest(),
            "scores": {kind: s.as_dict() for kind, s in scores.items()},
            "records": records,
        },
        sort_keys=True,
    )


@pytest.fixture(scope="module")
def serial_campaign() -> PartitionedCampaign:
    campaign = make_campaign("serial")
    result = campaign.run()
    assert result.executor == "serial"
    assert [r.status for r in result.partition_results] == ["completed", "completed"]
    return campaign


@pytest.fixture(scope="module")
def serial_payload(serial_campaign) -> str:
    return campaign_payload(serial_campaign)


# ---------------------------------------------------------------- resolution
def test_effective_executor_name_resolution():
    # explicit names pass through untouched, whatever the machine looks like
    for name in ("serial", "thread", "process"):
        assert effective_executor_name(name, workers=1, num_partitions=1) == name
    # auto: nothing to parallelise -> serial
    assert effective_executor_name("auto", workers=1, num_partitions=4, cpu_count=8) == "serial"
    assert effective_executor_name("auto", workers=4, num_partitions=1, cpu_count=8) == "serial"
    # auto: real parallelism available -> process breaks the GIL
    assert effective_executor_name("auto", workers=4, num_partitions=4, cpu_count=8) == "process"
    # auto: single core -> processes only add spawn overhead
    assert effective_executor_name("auto", workers=4, num_partitions=4, cpu_count=1) == "thread"
    with pytest.raises(ValueError, match="unknown campaign executor"):
        effective_executor_name("greenlet", workers=1, num_partitions=1)


def test_campaign_executor_env_override(monkeypatch):
    monkeypatch.delenv(CAMPAIGN_EXECUTOR_ENV, raising=False)
    assert resolve_campaign_executor() == "auto"
    assert resolve_campaign_executor("thread") == "thread"
    monkeypatch.setenv(CAMPAIGN_EXECUTOR_ENV, "process")
    assert resolve_campaign_executor("thread") == "process"
    # resolution stops at the *name*: auto resolves per machine later
    monkeypatch.setenv(CAMPAIGN_EXECUTOR_ENV, "auto")
    assert resolve_campaign_executor("process") == "auto"
    monkeypatch.setenv(CAMPAIGN_EXECUTOR_ENV, "hyperdrive")
    with pytest.raises(ValueError, match="executor"):
        resolve_campaign_executor()


def test_partition_config_rejects_unknown_executor():
    with pytest.raises(ValueError, match="executor"):
        PartitionConfig(executor="hyperdrive")


def test_create_executor_backends():
    assert isinstance(create_executor("serial"), SerialExecutor)
    thread = create_executor("thread", workers=3)
    assert isinstance(thread, ThreadExecutor) and thread.workers == 3
    process = create_executor("process", workers=2)
    assert isinstance(process, ProcessExecutor) and process.workers == 2
    with pytest.raises(ValueError, match="unknown campaign executor"):
        create_executor("auto")  # auto must be resolved before instantiation


# ------------------------------------------------------------ spec portability
def test_config_json_roundtrip_preserves_runtime_knobs():
    config = executor_config("process")
    config = DAAKGConfig(
        **{
            **{f: getattr(config, f) for f in config.__dataclass_fields__},
            "similarity_backend": "sharded",
            "similarity_workers": 3,
        }
    )
    restored = DAAKGConfig.from_json(config.to_json())
    assert restored == config
    assert restored.partition.executor == "process"
    assert restored.partition.num_partitions == 2
    assert restored.partition.workers == 2
    assert restored.similarity_backend == "sharded"
    assert restored.similarity_workers == 3


def test_piece_spec_pickle_roundtrip(tmp_path):
    campaign = make_campaign("serial")
    specs = campaign.piece_specs(tmp_path)
    assert len(specs) == campaign.num_partitions
    for spec in specs:
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.index == spec.index
        assert clone.config_json == spec.config_json
        assert clone.strategy == spec.strategy
        assert clone.checkpoint_dir is None  # unstarted piece ships its dataset
        assert set(clone.dataset_arrays) == set(spec.dataset_arrays)
        for key, array in spec.dataset_arrays.items():
            assert np.array_equal(clone.dataset_arrays[key], array)


def test_piece_spec_requires_exactly_one_source(tmp_path):
    with pytest.raises(ValueError, match="exactly one"):
        PieceSpec(index=0, config_json="{}", strategy="daakg", output_dir=str(tmp_path))
    with pytest.raises(ValueError, match="exactly one"):
        PieceSpec(
            index=0,
            config_json="{}",
            strategy="daakg",
            output_dir=str(tmp_path),
            dataset_arrays={"x": np.zeros(1)},
            checkpoint_dir=str(tmp_path),
        )


def test_piece_seeds_flow_into_specs(tmp_path):
    campaign = make_campaign("serial")
    specs = campaign.piece_specs(tmp_path)
    seeds = {DAAKGConfig.from_json(spec.config_json).seed for spec in specs}
    assert len(seeds) == campaign.num_partitions  # every piece gets its own stream


# ----------------------------------------------------------- backend parity
@pytest.mark.parametrize("executor", ["thread", "process"])
def test_backend_parity_byte_identical(executor, serial_payload):
    campaign = make_campaign(executor)
    result = campaign.run()
    assert result.executor == executor
    assert [r.status for r in result.partition_results] == ["completed", "completed"]
    assert campaign_payload(campaign) == serial_payload


def test_completed_pieces_are_skipped(serial_campaign):
    again = serial_campaign.run()
    assert [r.status for r in again.partition_results] == ["skipped", "skipped"]
    assert again.total_labels == LOOP_CONFIG.batch_size * serial_campaign.num_partitions


def test_manifest_records_executor(serial_campaign, tmp_path):
    serial_campaign.save(str(tmp_path / "ckpt"))
    manifest = json.loads((tmp_path / "ckpt" / "campaign.json").read_text())
    assert manifest["executor"] == "serial"
    assert manifest["partition_config"]["executor"] == "serial"


# ----------------------------------------------------------- crash recovery
def test_crash_recovery_resumes_only_failed_piece(monkeypatch, tmp_path, serial_payload):
    campaign = make_campaign("serial")
    monkeypatch.setenv(POISON_ENV, "1")
    with pytest.raises(CampaignExecutionError) as excinfo:
        campaign.run()
    statuses = {r.index: r.status for r in excinfo.value.result.partition_results}
    assert statuses == {0: "completed", 1: "failed"}
    assert "poisoned" in excinfo.value.result.failed[0].error

    # the half-finished campaign checkpoints and loads cleanly
    campaign.save(str(tmp_path / "ckpt"))
    restored = PartitionedCampaign.load(str(tmp_path / "ckpt"))
    manifest = json.loads((tmp_path / "ckpt" / "campaign.json").read_text())
    piece_status = {p["index"]: p["status"] for p in manifest["pieces"]}
    assert piece_status == {0: "saved", 1: "pending"}

    # the merged state refuses to serve a half-trained campaign, resumably
    with pytest.raises(CampaignExecutionError):
        restored.merged_state()

    # resume without the poison: only the failed piece re-runs...
    monkeypatch.delenv(POISON_ENV)
    result = restored.run()
    assert {r.index: r.status for r in result.partition_results} == {
        0: "skipped", 1: "completed"
    }
    # ...and the final bytes match a campaign that never crashed
    assert campaign_payload(restored) == serial_payload
