"""ANN backend: knobs, index determinism, exactness contracts, and serving.

The contracts under test mirror the module docstring of
:mod:`repro.runtime.ann`:

* knobs resolve env-over-config per field, mirroring the backend selector;
* the per-channel IVF indexes are a pure function of (factors, knobs, seed);
* every returned score is bit-identical to ``CosineChannels.pair_values`` —
  candidate *selection* is the only approximate step;
* recall is value-aware: structurally identical entities tie bitwise, and
  any same-valued member of a tie class is a correct top-k answer;
* threshold candidates and exact-fallback queries match the streamed
  kernels exactly at the same block size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alignment import SimilarityEngine
from repro.alignment.model import JointAlignmentModel
from repro.datasets import make_large_world_pair
from repro.embedding import TransE
from repro.kg.elements import ElementKind
from repro.runtime import (
    AnnParams,
    ChannelPair,
    CosineChannels,
    build_channel_index,
    create_backend,
    mutual_top_n,
    resolve_ann_params,
    stream_threshold_candidates,
    stream_topk,
    topk_recall,
)
from repro.runtime.ann import (
    ANN_MIN_RECALL_ENV,
    ANN_NLIST_ENV,
    ANN_NPROBE_ENV,
    AnnSearcher,
    ann_threshold_candidates,
    ann_topk,
)
from repro.runtime.views import AnnView

ATOL = 1e-12
NUM_CENTERS = 12


def clustered_channels(seed=0, n=80, m=400, d=8, num_channels=2, clip_at_zero=False):
    """Mixture-of-Gaussians factors: the geometry IVF indexes exploit."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(NUM_CENTERS, d))
    pairs = []
    for _ in range(num_channels):
        left = centers[rng.integers(0, NUM_CENTERS, size=n)]
        right = centers[rng.integers(0, NUM_CENTERS, size=m)]
        left = left + 0.2 * rng.normal(size=(n, d))
        right = right + 0.2 * rng.normal(size=(m, d))
        pairs.append(ChannelPair.from_raw(left, right))
    return CosineChannels(pairs, clip_at_zero=clip_at_zero)


def build_indexes(channels, nlist, seed=0, iters=6):
    slabs = tuple(pair.right for pair in channels.pairs)
    return tuple(
        build_channel_index(
            pair.right, nlist, iters, seed=[seed, ci, 0], slab_rights=slabs
        )
        for ci, pair in enumerate(channels.pairs)
    )


def dense_of(channels: CosineChannels) -> np.ndarray:
    out = None
    for pair in channels.pairs:
        tile = pair.left @ pair.right.T
        out = tile if out is None else np.maximum(out, tile)
    if channels.clip_at_zero:
        out = np.maximum(out, 0.0)
    return out


def gap_safe_threshold(matrix: np.ndarray, quantile: float) -> float:
    """A threshold sitting in a wide gap between attained similarity values.

    Exact and pruned threshold scans may disagree on pairs within an ulp of
    the cut; picking the midpoint of a wide inter-value gap makes the
    candidate *set* unambiguous.
    """
    values = np.unique(matrix)
    pivot = int(quantile * (values.size - 1))
    gaps = np.diff(values[pivot : pivot + 64])
    best = int(np.argmax(gaps))
    assert gaps[best] > 1e-6, "fixture produced no usable value gap"
    return float((values[pivot + best] + values[pivot + best + 1]) / 2.0)


# ------------------------------------------------------------------- knobs
class TestAnnParams:
    def test_defaults(self):
        params = AnnParams()
        assert params.nlist == 0 and params.nprobe == 8
        assert params.min_recall == 0.95 and params.min_index_cols == 1024

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nlist": -1},
            {"nprobe": 0},
            {"min_recall": 0.0},
            {"min_recall": 1.5},
            {"min_index_cols": 0},
            {"kmeans_iters": 0},
            {"calibration_rows": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AnnParams(**kwargs)

    def test_env_overrides_per_field(self, monkeypatch):
        configured = AnnParams(nlist=32, nprobe=4, min_recall=0.9)
        # a single env var overrides only its own field
        monkeypatch.setenv(ANN_NPROBE_ENV, "16")
        resolved = resolve_ann_params(configured)
        assert resolved.nprobe == 16
        assert resolved.nlist == 32 and resolved.min_recall == 0.9
        # every field has an env override, and env beats config
        monkeypatch.setenv(ANN_NLIST_ENV, "64")
        monkeypatch.setenv(ANN_MIN_RECALL_ENV, "0.8")
        resolved = resolve_ann_params(configured)
        assert (resolved.nlist, resolved.nprobe, resolved.min_recall) == (64, 16, 0.8)
        # without env vars the configured values stand, and None means defaults
        monkeypatch.delenv(ANN_NLIST_ENV)
        monkeypatch.delenv(ANN_NPROBE_ENV)
        monkeypatch.delenv(ANN_MIN_RECALL_ENV)
        assert resolve_ann_params(configured) == configured
        assert resolve_ann_params(None) == AnnParams()


# ------------------------------------------------------------- index build
class TestIndexBuild:
    def test_deterministic(self):
        channels = clustered_channels(seed=3, num_channels=2)
        first = build_indexes(channels, nlist=16, seed=7)
        second = build_indexes(channels, nlist=16, seed=7)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.centroids, b.centroids)
            np.testing.assert_array_equal(a.radii, b.radii)
            np.testing.assert_array_equal(a.indptr, b.indptr)
            np.testing.assert_array_equal(a.members, b.members)
            for sa, sb in zip(a.vectors, b.vectors):
                np.testing.assert_array_equal(sa, sb)

    def test_members_partition_the_columns(self):
        channels = clustered_channels(seed=4, num_channels=2, m=233)
        for index in build_indexes(channels, nlist=10):
            assert index.indptr[0] == 0 and index.indptr[-1] == 233
            assert np.all(np.diff(index.indptr) >= 0)
            np.testing.assert_array_equal(np.sort(index.members), np.arange(233))
            # every channel's slab is that channel's factors in member order
            for slab, pair in zip(index.vectors, channels.pairs):
                np.testing.assert_array_equal(slab, pair.right[index.members])


# ---------------------------------------------------------- query kernels
class TestAnnKernels:
    NLIST = 20
    K = 10
    BLOCK = 64

    @pytest.fixture(scope="class", params=[False, True], ids=["plain", "clip"])
    def setup(self, request):
        channels = clustered_channels(seed=11, clip_at_zero=request.param)
        indexes = build_indexes(channels, self.NLIST)
        rows = np.arange(channels.num_rows, dtype=np.int64)
        exact = stream_topk(channels, self.K, self.BLOCK, 1)
        return channels, indexes, rows, exact

    def test_full_probe_has_perfect_value_recall(self, setup):
        channels, indexes, rows, (exact_idx, exact_val) = setup
        ann_idx, ann_val = ann_topk(
            channels, indexes, rows, self.K, self.NLIST, self.BLOCK
        )
        assert topk_recall(exact_idx, ann_idx, exact_val, ann_val) == 1.0

    def test_returned_values_are_pair_exact(self, setup):
        channels, indexes, rows, _ = setup
        ann_idx, ann_val = ann_topk(channels, indexes, rows, self.K, 4, self.BLOCK)
        assert np.array_equal(
            ann_val.ravel(),
            channels.pair_values(np.repeat(rows, self.K), ann_idx.ravel()),
        )
        # canonical row order: descending values
        assert np.all(np.diff(ann_val, axis=1) <= 0)

    def test_partial_probe_recall_on_clustered_data(self, setup):
        channels, indexes, rows, (exact_idx, exact_val) = setup
        ann_idx, ann_val = ann_topk(channels, indexes, rows, self.K, 4, self.BLOCK)
        assert topk_recall(exact_idx, ann_idx, exact_val, ann_val) >= 0.9

    def test_shortfall_escalation_completes_starved_rows(self, setup):
        # k = full width with a single probed list starves every row; the
        # exact escalation must still return the complete column permutation
        channels, indexes, rows, _ = setup
        m = channels.num_cols
        ann_idx, ann_val = ann_topk(channels, indexes, rows, m, 1, self.BLOCK)
        assert ann_idx.shape == (rows.size, m)
        np.testing.assert_array_equal(
            np.sort(ann_idx, axis=1), np.broadcast_to(np.arange(m), ann_idx.shape)
        )
        assert np.array_equal(
            ann_val.ravel(),
            channels.pair_values(np.repeat(rows, m), ann_idx.ravel()),
        )

    def test_threshold_candidates_match_streamed_scan(self, setup):
        channels, indexes, rows, _ = setup
        threshold = gap_safe_threshold(dense_of(channels), 0.98)
        er, ec, ev = stream_threshold_candidates(channels, threshold, self.BLOCK)
        ar, ac, av = ann_threshold_candidates(channels, indexes, threshold, self.BLOCK)
        assert er.size > 0  # the fixture must actually exercise the scan
        np.testing.assert_array_equal(ar, er)
        np.testing.assert_array_equal(ac, ec)
        np.testing.assert_allclose(av, ev, rtol=0, atol=ATOL)
        # ANN threshold values are pair-exact by construction
        assert np.array_equal(av, channels.pair_values(ar, ac))

    def test_searcher_is_frozen_and_consistent(self, setup):
        channels, indexes, rows, _ = setup
        searcher = AnnSearcher(channels, indexes, 4, self.BLOCK)
        idx1, val1 = searcher.top_k(rows[:9], 5)
        idx2, val2 = searcher.top_k(rows[:9], 5)
        np.testing.assert_array_equal(idx1, idx2)
        np.testing.assert_array_equal(val1, val2)


class TestTopkRecall:
    def test_classic_index_mode(self):
        exact = np.array([[0, 1], [2, 3]])
        approx = np.array([[1, 5], [2, 3]])
        assert topk_recall(exact, approx) == 0.75

    def test_value_aware_mode_accepts_tie_swaps(self):
        # column 2 ties column 1 bitwise: swapping them is a correct answer
        exact_idx = np.array([[0, 1]])
        exact_val = np.array([[1.0, 0.5]])
        ann_idx = np.array([[0, 2]])
        assert topk_recall(exact_idx, ann_idx) == 0.5  # index mode: a miss
        assert topk_recall(exact_idx, ann_idx, exact_val, np.array([[1.0, 0.5]])) == 1.0
        # a genuinely smaller value still counts as a miss
        assert topk_recall(exact_idx, ann_idx, exact_val, np.array([[1.0, 0.4]])) == 0.5


# ------------------------------------------------------------ backend level
NUM_ENTITIES = 704
EMBED_DIM = 16
BLOCK = 256
INDEXED_PARAMS = AnnParams(min_index_cols=64, nprobe=4, min_recall=0.9)


def clustered_weights(num: int, rng: np.random.Generator) -> np.ndarray:
    centers = rng.normal(size=(NUM_CENTERS, EMBED_DIM))
    assign = rng.integers(0, NUM_CENTERS, size=num)
    return centers[assign] + 0.2 * rng.normal(size=(num, EMBED_DIM))


def ann_engine(model, params: AnnParams) -> SimilarityEngine:
    engine = SimilarityEngine(model, block_size=BLOCK)
    engine.workers = 1
    engine.ann_params = params
    engine.backend = create_backend(engine, "ann")
    return engine


@pytest.fixture(scope="module")
def clustered_model():
    pair = make_large_world_pair(NUM_ENTITIES, seed=3)
    rng = np.random.default_rng(5)
    model1 = TransE(pair.kg1, dim=EMBED_DIM, rng=0)
    model2 = TransE(pair.kg2, dim=EMBED_DIM, rng=1)
    model1.entity_embeddings.weight.data[:] = clustered_weights(pair.kg1.num_entities, rng)
    model2.entity_embeddings.weight.data[:] = clustered_weights(pair.kg2.num_entities, rng)
    model1.mark_parameters_mutated()
    model2.mark_parameters_mutated()
    model = JointAlignmentModel(pair, model1, model2, rng=0)
    engine = ann_engine(model, INDEXED_PARAMS)
    model.similarity = engine
    model.set_landmarks(pair.entity_match_ids()[:64])
    return model, engine


class TestAnnBackend:
    def test_indexes_and_stays_pair_exact(self, clustered_model):
        _, engine = clustered_model
        payload = engine.backend._index_for(ElementKind.ENTITY)
        assert payload is not None, "clustered embeddings should always index"
        channels = engine.channels(ElementKind.ENTITY)
        rows = np.linspace(0, channels.num_rows - 1, 64).astype(np.int64)
        ann_idx, ann_val = engine.backend.query_top_k(ElementKind.ENTITY, rows, 10)
        assert np.array_equal(
            ann_val.ravel(),
            channels.pair_values(np.repeat(rows, 10), ann_idx.ravel()),
        )
        exact_idx, exact_val = stream_topk(channels.select_rows(rows), 10, BLOCK, 1)
        recall = topk_recall(exact_idx, ann_idx, exact_val, ann_val)
        assert recall >= 0.85  # calibration pinned the sampled floor at 0.9

    def test_index_cache_invalidates_on_landmark_update(self, clustered_model):
        model, engine = clustered_model
        previous = model._landmarks
        first = engine.backend._index_for(ElementKind.ENTITY)
        assert engine.backend._index_for(ElementKind.ENTITY) is first  # token-cached
        try:
            model.set_landmarks(model.pair.entity_match_ids()[:32])
            rebuilt = engine.backend._index_for(ElementKind.ENTITY)
            assert rebuilt is not first
            # the rebuilt index keeps the contracts: pair-exact scores at
            # the calibrated recall floor against the *new* channel state
            assert rebuilt is not None
            channels = engine.channels(ElementKind.ENTITY)
            rows = np.arange(0, channels.num_rows, 11, dtype=np.int64)
            ann_idx, ann_val = engine.backend.query_top_k(ElementKind.ENTITY, rows, 5)
            assert np.array_equal(
                ann_val.ravel(),
                channels.pair_values(np.repeat(rows, 5), ann_idx.ravel()),
            )
            exact_idx, exact_val = stream_topk(channels.select_rows(rows), 5, BLOCK, 1)
            assert topk_recall(exact_idx, ann_idx, exact_val, ann_val) >= 0.85
        finally:
            model.set_landmarks(previous)

    def test_exact_fallback_matches_sharded_bitwise(self, clustered_model):
        model, _ = clustered_model
        # default knobs: min_index_cols exceeds this catalogue, so every
        # query must be served by the inherited exact streamed kernels
        fallback = ann_engine(model, AnnParams())
        assert fallback.backend._index_for(ElementKind.ENTITY) is None
        sharded = SimilarityEngine(model, block_size=BLOCK)
        sharded.backend = create_backend(sharded, "sharded")
        f_table = fallback.top_k_table(ElementKind.ENTITY, 5)
        s_table = sharded.top_k_table(ElementKind.ENTITY, 5)
        np.testing.assert_array_equal(f_table.left_indices, s_table.left_indices)
        np.testing.assert_array_equal(f_table.left_values, s_table.left_values)
        np.testing.assert_array_equal(f_table.right_indices, s_table.right_indices)
        np.testing.assert_array_equal(f_table.right_values, s_table.right_values)

    def test_threshold_candidates_match_sharded(self, clustered_model):
        model, engine = clustered_model
        channels = engine.channels(ElementKind.ENTITY)
        threshold = gap_safe_threshold(dense_of(channels), 0.995)
        sharded = SimilarityEngine(model, block_size=BLOCK)
        sharded.backend = create_backend(sharded, "sharded")
        ar, ac, av = engine.backend.threshold_candidates(ElementKind.ENTITY, threshold)
        sr, sc, sv = sharded.backend.threshold_candidates(ElementKind.ENTITY, threshold)
        assert sr.size > 0
        np.testing.assert_array_equal(ar, sr)
        np.testing.assert_array_equal(ac, sc)
        np.testing.assert_allclose(av, sv, rtol=0, atol=ATOL)

    def test_mutual_top_n_small_factors_fall_back_exactly(self, clustered_model):
        _, engine = clustered_model
        rng = np.random.default_rng(9)
        a, b = rng.normal(size=(30, 6)), rng.normal(size=(25, 6))  # below min_index_cols
        lefts, rights = engine.backend.mutual_top_n_pairs(a, b, 4)
        el, er = mutual_top_n(a, b, 4, block=BLOCK)
        np.testing.assert_array_equal(lefts, el)
        np.testing.assert_array_equal(rights, er)

    def test_mutual_top_n_indexed_is_deterministic(self, clustered_model):
        _, engine = clustered_model
        rng = np.random.default_rng(13)
        centers = rng.normal(size=(NUM_CENTERS, 6))
        a = centers[rng.integers(0, NUM_CENTERS, size=200)] + 0.2 * rng.normal(size=(200, 6))
        b = centers[rng.integers(0, NUM_CENTERS, size=180)] + 0.2 * rng.normal(size=(180, 6))
        first = engine.backend.mutual_top_n_pairs(a, b, 5)
        second = engine.backend.mutual_top_n_pairs(a, b, 5)
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])

    def test_view_serves_ann_core_with_exact_fold_in(self, clustered_model):
        _, engine = clustered_model
        view = engine.backend.view(ElementKind.ENTITY)
        assert isinstance(view, AnnView)
        probe = np.array([0, 3, 7], dtype=np.int64)
        base_idx, base_val = view.top_k_for_rows(probe, 4)
        # a folded column beating every score must rank first, exactly
        folded = view.append_col(np.full(view.num_rows, 2.0))
        idx, val = folded.top_k_for_rows(probe, 4)
        assert np.all(idx[:, 0] == view.num_cols)
        np.testing.assert_array_equal(val[:, 0], np.full(probe.size, 2.0))
        np.testing.assert_array_equal(idx[:, 1:], base_idx[:, :3])
        np.testing.assert_array_equal(val[:, 1:], base_val[:, :3])
        # an appended row is dense and therefore served exactly
        tail_row = np.linspace(0.0, 1.0, folded.num_cols)
        with_row = folded.append_row(tail_row)
        r_idx, r_val = with_row.top_k_for_rows(np.array([view.num_rows]), 3)
        np.testing.assert_array_equal(r_val[0], np.sort(tail_row)[::-1][:3])
