"""The concurrent serving front end: admission, deadlines, storms, hot-swap."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serving import (
    AlignmentService,
    BackpressureError,
    FrontendConfig,
    ServingError,
    ServingFrontend,
    resolve_frontend_config,
)


def make_service(fitted_pipeline, **kwargs) -> AlignmentService:
    kwargs.setdefault("max_batch", 64)
    return AlignmentService.from_pipeline(fitted_pipeline, **kwargs)


# ------------------------------------------------------------------- config
def test_frontend_config_validation():
    with pytest.raises(ValueError, match="num_workers"):
        FrontendConfig(num_workers=0)
    with pytest.raises(ValueError, match="max_queue_depth"):
        FrontendConfig(max_queue_depth=0)
    with pytest.raises(ValueError, match="max_batch"):
        FrontendConfig(max_batch=0)
    with pytest.raises(ValueError, match="default_deadline_ms"):
        FrontendConfig(default_deadline_ms=0)


def test_frontend_env_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_SERVING_WORKERS", "7")
    monkeypatch.setenv("REPRO_SERVING_QUEUE_DEPTH", "99")
    monkeypatch.setenv("REPRO_SERVING_MAX_BATCH", "17")
    monkeypatch.setenv("REPRO_SERVING_DEADLINE_MS", "12.5")
    resolved = resolve_frontend_config(FrontendConfig(num_workers=1, max_queue_depth=5))
    assert resolved.num_workers == 7
    assert resolved.max_queue_depth == 99
    assert resolved.max_batch == 17
    assert resolved.default_deadline_ms == 12.5
    monkeypatch.delenv("REPRO_SERVING_WORKERS")
    partial = resolve_frontend_config(FrontendConfig(num_workers=3))
    assert partial.num_workers == 3  # env unset -> configured value survives


# ----------------------------------------------------------------- dispatch
def test_submit_resolves_via_worker_pool(fitted_pipeline):
    service = make_service(fitted_pipeline, cache_size=0)
    frontend = ServingFrontend(
        service, FrontendConfig(num_workers=2, default_deadline_ms=50), resolve_env=False
    )
    uris = list(fitted_pipeline.kg1.entities[:6])
    expected_topk = service.top_k_alignments(uris, k=3)
    pair = (uris[0], fitted_pipeline.kg2.entities[1])
    expected_score = float(service.score_pairs([pair])[0])
    with frontend:
        tickets = [frontend.submit_top_k(uri, k=3) for uri in uris]
        score_ticket = frontend.submit_score(*pair)
        assert [t.result(timeout=5) for t in tickets] == expected_topk
        assert score_ticket.result(timeout=5) == pytest.approx(expected_score)
    stats = frontend.stats()
    assert stats["submitted_total"] == len(uris) + 1
    assert stats["resolved_total"] == len(uris) + 1
    assert stats["shed_total"] == 0
    assert stats["dispatched_batches"] >= 1


def test_enqueue_routes_through_dispatcher_and_back(fitted_pipeline):
    service = make_service(fitted_pipeline, cache_size=0)
    frontend = ServingFrontend(
        service, FrontendConfig(num_workers=1, default_deadline_ms=20), resolve_env=False
    )
    uri = fitted_pipeline.kg1.entities[0]
    with frontend:
        ticket = service.enqueue_top_k(uri, k=2)
        assert ticket.dispatcher is frontend
        assert not service._pending  # routed to the dispatcher, not the local queue
        value = ticket.result(timeout=5)
        assert value == service.top_k_alignments([uri], k=2)[0]
        # the caller's result() waited on the flush loop — the service-side
        # caller-driven flush path was never taken
        assert service.stats.flushes == 0
    # detached again: the legacy caller-driven path is restored
    legacy = service.enqueue_top_k(uri, k=2)
    assert legacy.dispatcher is None
    assert service._pending
    assert legacy.result() == value
    assert service.stats.flushes == 1


def test_double_attach_rejected(fitted_pipeline):
    service = make_service(fitted_pipeline)
    first = ServingFrontend(service, resolve_env=False).start()
    second = ServingFrontend(service, resolve_env=False)
    try:
        with pytest.raises(ServingError, match="already attached"):
            second.start()
    finally:
        first.stop()


# ------------------------------------------------------------- backpressure
def test_backpressure_sheds_with_typed_error_then_drains(fitted_pipeline):
    service = make_service(fitted_pipeline, cache_size=0)
    frontend = ServingFrontend(
        service,
        FrontendConfig(num_workers=1, max_queue_depth=8, default_deadline_ms=50),
        resolve_env=False,
    )
    # not started: the queue cannot drain, so admission fills deterministically
    uris = list(fitted_pipeline.kg1.entities)
    admitted = [frontend.submit_top_k(uris[i % len(uris)], k=2) for i in range(8)]
    with pytest.raises(BackpressureError) as excinfo:
        frontend.submit_top_k(uris[0], k=2)
    assert excinfo.value.depth == 8
    assert excinfo.value.limit == 8
    assert frontend.stats()["shed_total"] == 1
    assert frontend.depth == 8
    # once workers start, the burst drains completely and service recovers
    frontend.start()
    try:
        assert frontend.drain(timeout=10)
        assert frontend.depth == 0
        assert all(t.result(timeout=5) is not None for t in admitted)
        post = frontend.submit_top_k(uris[1], k=2)  # admissions resume
        assert post.result(timeout=5)
    finally:
        frontend.stop()


def test_overload_burst_sheds_and_recovers(fitted_pipeline):
    service = make_service(fitted_pipeline, cache_size=0, max_batch=16)
    frontend = ServingFrontend(
        service,
        FrontendConfig(num_workers=1, max_queue_depth=32, default_deadline_ms=200),
        resolve_env=False,
    )
    uris = list(fitted_pipeline.kg1.entities)
    admitted, shed = [], 0
    with frontend:
        for i in range(2000):
            try:
                admitted.append(frontend.submit_top_k(uris[i % len(uris)], k=5))
            except BackpressureError:
                shed += 1
        assert frontend.drain(timeout=30)
        assert frontend.depth == 0
    assert shed > 0  # a submit-speed burst must shed, not queue unboundedly
    assert frontend.stats()["shed_total"] == shed
    assert frontend.stats()["peak_queue_depth"] <= 32
    assert all(t.ready and t.error is None for t in admitted)


def test_stop_without_drain_fails_queued_tickets(fitted_pipeline):
    service = make_service(fitted_pipeline)
    frontend = ServingFrontend(service, FrontendConfig(num_workers=1), resolve_env=False)
    ticket = frontend.submit_top_k(fitted_pipeline.kg1.entities[0], k=2)
    frontend.stop(drain=False)
    with pytest.raises(ServingError, match="stopped before resolving"):
        ticket.result()


# ------------------------------------------------------- deadline semantics
def test_lone_request_flushes_at_half_deadline(fitted_pipeline):
    service = make_service(fitted_pipeline, cache_size=0)
    frontend = ServingFrontend(
        service, FrontendConfig(num_workers=1, default_deadline_ms=5000), resolve_env=False
    )
    with frontend:
        submitted = time.perf_counter()
        ticket = frontend.submit_top_k(
            fitted_pipeline.kg1.entities[0], k=2, deadline_ms=600
        )
        time.sleep(0.06)
        assert not ticket.ready  # far below max_batch and only 60ms in: no flush yet
        ticket.result(timeout=5)
        elapsed = ticket.completed_at - submitted
        # flushed once half the 600ms budget was spent — not immediately, and
        # well before the full deadline (generous margins for busy CI boxes)
        assert 0.15 <= elapsed <= 0.55
        assert frontend.stats()["flush_reasons"]["deadline"] >= 1


def test_full_batch_flushes_without_waiting_for_deadline(fitted_pipeline):
    service = make_service(fitted_pipeline, cache_size=0, max_batch=8)
    frontend = ServingFrontend(
        service, FrontendConfig(num_workers=1), resolve_env=False
    )
    uris = list(fitted_pipeline.kg1.entities[:8])
    with frontend:
        start = time.perf_counter()
        tickets = [frontend.submit_top_k(uri, k=2, deadline_ms=10_000) for uri in uris]
        for ticket in tickets:
            ticket.result(timeout=5)
        elapsed = time.perf_counter() - start
    assert elapsed < 2.0  # batch-size trigger, not the 5s half-deadline
    assert frontend.stats()["flush_reasons"]["full"] >= 1


# ------------------------------------------------------- hot-swap under load
def test_hot_swap_and_fold_in_under_sustained_storm(fitted_pipeline):
    service = make_service(fitted_pipeline, cache_size=4096)
    frontend = ServingFrontend(
        service,
        FrontendConfig(num_workers=2, max_queue_depth=4096, default_deadline_ms=25),
        resolve_env=False,
    )
    kg1, kg2 = fitted_pipeline.kg1, fitted_pipeline.kg2
    uris = list(kg1.entities)
    errors: list[Exception] = []
    resolved = [0]
    stop = threading.Event()

    def storm(seed: int) -> None:
        rng = np.random.default_rng(seed)
        count = 0
        while not stop.is_set():
            window = [
                frontend.submit_top_k(uris[i], k=5)
                for i in rng.integers(0, len(uris), 48)
            ]
            window.append(
                frontend.submit_score(
                    uris[int(rng.integers(len(uris)))],
                    kg2.entities[int(rng.integers(kg2.num_entities))],
                )
            )
            for ticket in window:
                try:
                    ticket.result(timeout=10)
                    count += 1
                except Exception as exc:  # noqa: BLE001 - collected for the assert
                    errors.append(exc)
        resolved[0] += count

    tokens = {service.state_token}
    with frontend:
        threads = [threading.Thread(target=storm, args=(seed,)) for seed in range(3)]
        for thread in threads:
            thread.start()
        # two atomic swaps and one fold-in while the storm runs
        time.sleep(0.15)
        tokens.add(service.hot_swap(fitted_pipeline))
        time.sleep(0.15)
        tokens.add(service.hot_swap(fitted_pipeline))
        time.sleep(0.15)
        victim = max(range(kg2.num_entities), key=kg2.entity_degree)
        triples = [
            ("storm:new", kg2.relations[r], kg2.entities[t])
            for r, t in kg2.out_edges(victim)[:6]
        ]
        report = service.fold_in("storm:new", triples)
        tokens.add(report.token)
        time.sleep(0.15)
        stop.set()
        for thread in threads:
            thread.join()
        assert frontend.drain(timeout=30)

    # zero request errors across the storm, swaps and fold-in
    assert errors == []
    assert resolved[0] > 0
    assert service.stats.swaps == 2 and service.stats.folds == 1
    # no cross-token cache leaks: every cached entry is keyed by a token the
    # service actually served — and post-storm queries serve the *current*
    # (folded) state, matching a fresh computation
    assert {key[0] for key in service._cache} <= tokens
    matrix = fitted_pipeline.model.entity_similarity_matrix()
    uri = kg1.entities[0]
    # the folded clone may legitimately outrank the original best match, so
    # the served top-1 must be at least as good as the pre-fold maximum
    assert service.top_k_alignments([uri], k=1)[0][0][1] >= matrix[0].max() - 1e-9
    assert np.isfinite(service.score_pairs([(uri, "storm:new")])[0])
    # bounded tail latency: generous bound, this asserts "no stall", not speed
    assert frontend.stats()["p99_latency_ms"] < 1000.0
