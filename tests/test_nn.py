"""Tests for the nn toolkit: layers, initialisers, optimisers, module containers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import SGD, Adam, Embedding, FeedForward, Linear, Module, Parameter
from repro.nn.init import identity_with_noise, uniform_unit_norm, xavier_uniform


class TestInit:
    def test_xavier_uniform_shape_and_range(self):
        w = xavier_uniform((10, 20), rng=0)
        limit = np.sqrt(6.0 / 30)
        assert w.shape == (10, 20)
        assert np.all(np.abs(w) <= limit + 1e-9)

    def test_uniform_unit_norm_rows(self):
        w = uniform_unit_norm((5, 8), rng=0)
        assert np.allclose(np.linalg.norm(w, axis=1), 1.0)

    def test_identity_with_noise_close_to_identity(self):
        m = identity_with_noise(6, noise=0.01, rng=0)
        assert np.allclose(m, np.eye(6), atol=0.02)


class TestLayers:
    def test_embedding_lookup_shape(self):
        emb = Embedding(10, 4, rng=0)
        assert emb(np.array([0, 3, 9])).shape == (3, 4)

    def test_embedding_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            Embedding(0, 4)

    def test_embedding_renormalize(self):
        emb = Embedding(5, 3, rng=0, unit_norm=False)
        emb.weight.data *= 10
        emb.renormalize()
        assert np.allclose(np.linalg.norm(emb.weight.data, axis=1), 1.0)

    def test_linear_output_shape_and_bias(self):
        lin = Linear(4, 2, rng=0)
        out = lin(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)

    def test_linear_without_bias(self):
        lin = Linear(4, 2, bias=False, rng=0)
        assert lin.bias is None

    def test_feedforward_depth(self):
        ffnn = FeedForward(4, 8, 2, num_hidden_layers=2, rng=0)
        assert len(ffnn.layers) == 3
        assert ffnn(Tensor(np.ones((5, 4)))).shape == (5, 2)

    def test_feedforward_rejects_negative_layers(self):
        with pytest.raises(ValueError):
            FeedForward(4, 8, 2, num_hidden_layers=-1)


class TestModule:
    def test_parameters_are_collected_recursively_and_deduplicated(self):
        class Wrapper(Module):
            def __init__(self):
                self.layer = Linear(3, 3, rng=0)
                self.same = self.layer  # shared reference must not duplicate
                self.items = [Parameter(np.zeros(2))]
                self.table = {"p": Parameter(np.ones(2))}

        module = Wrapper()
        params = module.parameters()
        assert len(params) == 4  # weight, bias, list param, dict param

    def test_num_parameters_counts_scalars(self):
        lin = Linear(3, 2, rng=0)
        assert lin.num_parameters() == 3 * 2 + 2

    def test_state_dict_roundtrip(self):
        lin = Linear(3, 2, rng=0)
        state = lin.state_dict()
        lin.weight.data += 1.0
        lin.load_state_dict(state)
        assert np.allclose(lin.weight.data, state["weight"])

    def test_load_state_dict_rejects_unknown_keys(self):
        lin = Linear(3, 2, rng=0)
        with pytest.raises(KeyError):
            lin.load_state_dict({"nope": np.zeros(1)})

    def test_load_state_dict_rejects_shape_mismatch(self):
        lin = Linear(3, 2, rng=0)
        state = lin.state_dict()
        state["weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            lin.load_state_dict(state)

    def test_zero_grad_clears_all(self):
        lin = Linear(3, 1, rng=0)
        out = lin(Tensor(np.ones((2, 3)))).sum()
        out.backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None


def _train_quadratic(optimizer_factory, steps=200):
    param = Parameter(np.array([5.0, -3.0]))
    optimizer = optimizer_factory([param])
    for _ in range(steps):
        optimizer.zero_grad()
        loss = ((param - Tensor(np.array([1.0, 2.0]))) ** 2).sum()
        loss.backward()
        optimizer.step()
    return param.data


class TestOptimizers:
    def test_sgd_converges_on_quadratic(self):
        final = _train_quadratic(lambda p: SGD(p, lr=0.1), steps=300)
        assert np.allclose(final, [1.0, 2.0], atol=1e-2)

    def test_sgd_with_momentum_converges(self):
        final = _train_quadratic(lambda p: SGD(p, lr=0.05, momentum=0.9), steps=300)
        assert np.allclose(final, [1.0, 2.0], atol=1e-2)

    def test_adam_converges_on_quadratic(self):
        final = _train_quadratic(lambda p: Adam(p, lr=0.1), steps=300)
        assert np.allclose(final, [1.0, 2.0], atol=1e-2)

    def test_adam_weight_decay_shrinks_parameters(self):
        param = Parameter(np.array([10.0]))
        optimizer = Adam([param], lr=0.1, weight_decay=0.5)
        for _ in range(50):
            optimizer.zero_grad()
            (param * 0.0).sum().backward()
            optimizer.step()
        assert abs(param.data[0]) < 10.0

    def test_optimizer_requires_parameters(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_optimizer_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_sgd_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)

    def test_step_skips_parameters_without_grad(self):
        param = Parameter(np.array([1.0]))
        optimizer = Adam([param], lr=0.1)
        optimizer.step()  # no backward was run; should not raise
        assert param.data[0] == pytest.approx(1.0)


def _stepped(optimizer_factory, steps=3):
    param = Parameter(np.array([5.0, -3.0]))
    optimizer = optimizer_factory([param])
    for _ in range(steps):
        optimizer.zero_grad()
        ((param - Tensor(np.array([1.0, 2.0]))) ** 2).sum().backward()
        optimizer.step()
    return param, optimizer


class TestOptimizerStateDicts:
    def test_adam_state_round_trip_resumes_identically(self):
        param, optimizer = _stepped(lambda p: Adam(p, lr=0.1))
        state = optimizer.state_dict()
        fresh_param = Parameter(param.data.copy())
        fresh = Adam([fresh_param], lr=0.1)
        fresh.load_state_dict(state)
        assert fresh._t == optimizer._t
        for a, b in ((param, fresh_param),):
            a.zero_grad(); b.zero_grad()
            ((a - Tensor(np.array([1.0, 2.0]))) ** 2).sum().backward()
            ((b - Tensor(np.array([1.0, 2.0]))) ** 2).sum().backward()
        optimizer.step()
        fresh.step()
        np.testing.assert_array_equal(param.data, fresh_param.data)

    def test_sgd_momentum_state_round_trip(self):
        param, optimizer = _stepped(lambda p: SGD(p, lr=0.05, momentum=0.9))
        state = optimizer.state_dict()
        fresh = SGD([Parameter(param.data.copy())], lr=0.05, momentum=0.9)
        fresh.load_state_dict(state)
        np.testing.assert_array_equal(fresh._velocity[0], optimizer._velocity[0])

    def test_state_dict_is_a_copy(self):
        _, optimizer = _stepped(lambda p: Adam(p, lr=0.1))
        state = optimizer.state_dict()
        state["m.0"][:] = 123.0
        assert not np.array_equal(optimizer._m[0], state["m.0"])

    def test_load_rejects_missing_and_unknown_keys(self):
        _, optimizer = _stepped(lambda p: Adam(p, lr=0.1))
        state = optimizer.state_dict()
        incomplete = {k: v for k, v in state.items() if k != "t"}
        with pytest.raises(KeyError, match="missing"):
            optimizer.load_state_dict(incomplete)
        extra = dict(state)
        extra["bogus"] = np.zeros(2)
        with pytest.raises(KeyError, match="unknown"):
            optimizer.load_state_dict(extra)

    def test_load_rejects_shape_mismatch(self):
        _, optimizer = _stepped(lambda p: SGD(p, lr=0.1, momentum=0.5))
        state = optimizer.state_dict()
        state["velocity.0"] = np.zeros(5)
        with pytest.raises(ValueError, match="shape mismatch"):
            optimizer.load_state_dict(state)

    def test_load_validates_before_mutating(self):
        _, optimizer = _stepped(lambda p: Adam(p, lr=0.1))
        before_m = optimizer._m[0].copy()
        state = optimizer.state_dict()
        state["v.0"] = np.zeros(7)  # bad shape, but m.0 entry is valid
        state["m.0"] = np.full_like(before_m, 99.0)
        with pytest.raises(ValueError):
            optimizer.load_state_dict(state)
        np.testing.assert_array_equal(optimizer._m[0], before_m)
