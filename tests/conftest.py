"""Shared fixtures: small KGs and a tiny trained pipeline for integration tests."""

from __future__ import annotations

import pytest

from repro import DAAKG, DAAKGConfig, make_benchmark
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.embedding.trainer import EmbeddingTrainingConfig
from repro.active.pool import PoolConfig
from repro.inference.power import InferencePowerConfig
from repro.kg.elements import ElementKind
from repro.kg.graph import KnowledgeGraph
from repro.kg.pair import AlignedKGPair, GoldAlignment, SplitRatios


@pytest.fixture(scope="session")
def tiny_kg() -> KnowledgeGraph:
    """A hand-written KG with entities, relations, classes and type triples."""
    return KnowledgeGraph.from_triples(
        "tiny",
        triples=[
            ("a", "likes", "b"),
            ("a", "knows", "c"),
            ("b", "likes", "c"),
            ("c", "locatedIn", "d"),
            ("e", "locatedIn", "d"),
            ("b", "knows", "e"),
        ],
        type_triples=[
            ("a", "Person"),
            ("b", "Person"),
            ("c", "Person"),
            ("d", "Place"),
            ("e", "Place"),
        ],
    )


@pytest.fixture(scope="session")
def tiny_pair() -> AlignedKGPair:
    """Two tiny isomorphic-ish KGs with gold matches at every level."""
    kg1 = KnowledgeGraph.from_triples(
        "left",
        triples=[
            ("l:a", "l:likes", "l:b"),
            ("l:b", "l:likes", "l:c"),
            ("l:a", "l:bornIn", "l:x"),
            ("l:b", "l:bornIn", "l:y"),
            ("l:c", "l:bornIn", "l:x"),
        ],
        type_triples=[("l:a", "l:Person"), ("l:b", "l:Person"), ("l:c", "l:Person"),
                      ("l:x", "l:City"), ("l:y", "l:City")],
    )
    kg2 = KnowledgeGraph.from_triples(
        "right",
        triples=[
            ("r:1", "r:fondOf", "r:2"),
            ("r:2", "r:fondOf", "r:3"),
            ("r:1", "r:birthPlace", "r:10"),
            ("r:2", "r:birthPlace", "r:11"),
            ("r:3", "r:birthPlace", "r:10"),
        ],
        type_triples=[("r:1", "r:Human"), ("r:2", "r:Human"), ("r:3", "r:Human"),
                      ("r:10", "r:Town"), ("r:11", "r:Town")],
    )
    pair = AlignedKGPair(
        name="tiny-pair",
        kg1=kg1,
        kg2=kg2,
        entity_alignment=GoldAlignment(
            ElementKind.ENTITY,
            [("l:a", "r:1"), ("l:b", "r:2"), ("l:c", "r:3"), ("l:x", "r:10"), ("l:y", "r:11")],
        ),
        relation_alignment=GoldAlignment(
            ElementKind.RELATION, [("l:likes", "r:fondOf"), ("l:bornIn", "r:birthPlace")]
        ),
        class_alignment=GoldAlignment(
            ElementKind.CLASS, [("l:Person", "r:Human"), ("l:City", "r:Town")]
        ),
    )
    pair.split_entity_matches(SplitRatios(train=0.4, valid=0.0, test=0.6), seed=0)
    return pair


@pytest.fixture(scope="session")
def small_benchmark() -> AlignedKGPair:
    """A scaled-down D-W style benchmark pair (≈150 entities)."""
    return make_benchmark("D-W", scale=0.15, seed=0)


@pytest.fixture(scope="session")
def fast_config() -> DAAKGConfig:
    """A DAAKG config sized for unit/integration tests (seconds, not minutes)."""
    return DAAKGConfig(
        base_model="transe",
        entity_dim=16,
        class_dim=4,
        pretrain=EmbeddingTrainingConfig(epochs=4),
        alignment=AlignmentTrainingConfig(
            rounds=2, epochs_per_round=10, num_negatives=5,
            embedding_batches_per_round=2, embedding_batch_size=256,
        ),
        pool=PoolConfig(top_n=20),
        inference=InferencePowerConfig(max_hops=2, power_threshold=0.5),
        seed=0,
    )


@pytest.fixture(scope="session")
def fitted_pipeline(small_benchmark, fast_config) -> DAAKG:
    """A DAAKG pipeline fitted once and reused by integration tests."""
    pipeline = DAAKG(small_benchmark, fast_config)
    pipeline.fit()
    return pipeline
