"""Dense ↔ sharded backend parity, streaming kernels, and the zero-norm guard.

The contract under test: for the *same* model state, the sharded backend
serves the same top-k indices, the same ranks and therefore the same
``evaluate()`` metrics as the dense backend — including after landmark
updates and serving fold-ins — while never materialising the full matrix on
its query paths.  Raw values may differ from the dense matrix in the last
ulp (tiled BLAS reductions round differently), so index/metric comparisons
are exact and value comparisons use ``atol=1e-12``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alignment import (
    SimilarityEngine,
    blocked_cosine_similarity,
    evaluate_alignment,
    evaluate_alignment_from_engine,
    mine_potential_matches,
    mine_potential_matches_from_engine,
)
from repro.core.config import DAAKGConfig
from repro.kg.elements import ElementKind
from repro.runtime import (
    ChannelPair,
    CosineChannels,
    canonical_topk,
    mutual_top_n,
    resolve_backend_name,
    resolve_workers,
    stream_row_col_max,
    stream_row_max,
    stream_threshold_candidates,
    stream_topk,
)
from repro.serving import AlignmentService
from repro.utils.math import cosine_similarity_matrix, safe_l2_normalize, top_k_rows

ATOL = 1e-12


def random_channels(seed=0, n=57, m=43, d=9, num_channels=2) -> CosineChannels:
    rng = np.random.default_rng(seed)
    pairs = [
        ChannelPair.from_raw(rng.normal(size=(n, d)), rng.normal(size=(m, d)))
        for _ in range(num_channels)
    ]
    return CosineChannels(pairs)


def dense_of(channels: CosineChannels) -> np.ndarray:
    out = None
    for pair in channels.pairs:
        tile = pair.left @ pair.right.T
        out = tile if out is None else np.maximum(out, tile)
    if out is None:
        out = np.zeros(channels.shape)
    if channels.clip_at_zero:
        out = np.maximum(out, 0.0)
    return out


# ------------------------------------------------------------ kernel parity
class TestStreamingKernels:
    @pytest.mark.parametrize("block", [7, 16, 1024])
    @pytest.mark.parametrize("k", [1, 5, 50])
    def test_stream_topk_matches_dense(self, block, k):
        channels = random_channels()
        matrix = dense_of(channels)
        idx, val = stream_topk(channels, k, block=block)
        expected = top_k_rows(matrix, k)
        assert np.array_equal(idx, expected)
        rows = np.arange(matrix.shape[0])[:, None]
        np.testing.assert_allclose(val, matrix[rows, expected], rtol=0, atol=ATOL)

    def test_stream_topk_deterministic_across_workers(self):
        channels = random_channels(seed=3, n=200, m=90)
        one = stream_topk(channels, 7, block=32, workers=1)
        many = stream_topk(channels, 7, block=32, workers=4)
        assert np.array_equal(one[0], many[0])
        assert np.array_equal(one[1], many[1])

    def test_canonical_topk_breaks_ties_by_index(self):
        values = np.array([[1.0, 2.0, 2.0, 0.5, 2.0]])
        indices = np.array([[40, 30, 10, 0, 20]])
        top_v, top_i = canonical_topk(values, indices, 3)
        assert top_v.tolist() == [[2.0, 2.0, 2.0]]
        assert top_i.tolist() == [[10, 20, 30]]  # equal values: ascending index

    def test_stream_row_max_exact(self):
        channels = random_channels(seed=5)
        matrix = dense_of(channels)
        assert np.array_equal(stream_row_max(channels, block=11), matrix.max(axis=1))
        assert np.array_equal(
            stream_row_max(channels.transpose(), block=11, workers=3), matrix.max(axis=0)
        )

    @pytest.mark.parametrize("workers", [1, 3])
    def test_stream_row_col_max_fused(self, workers):
        channels = random_channels(seed=6)
        matrix = dense_of(channels)
        row_max, col_max = stream_row_col_max(channels, block=11, workers=workers)
        assert np.array_equal(row_max, matrix.max(axis=1))
        assert np.array_equal(col_max, matrix.max(axis=0))

    def test_threshold_candidates_row_major(self):
        channels = random_channels(seed=7)
        matrix = dense_of(channels)
        rows, cols, values = stream_threshold_candidates(channels, 0.3, block=13)
        er, ec = np.where(matrix >= 0.3)
        assert np.array_equal(rows, er) and np.array_equal(cols, ec)
        np.testing.assert_allclose(values, matrix[er, ec], rtol=0, atol=ATOL)

    def test_mutual_top_n_matches_dense_masks(self):
        rng = np.random.default_rng(11)
        a, b = rng.normal(size=(40, 6)), rng.normal(size=(33, 6))
        lefts, rights = mutual_top_n(a, b, 5, block=9)
        similarity = cosine_similarity_matrix(a, b)
        top_left = top_k_rows(similarity, 5)
        top_right = top_k_rows(similarity.T, 5)
        in_left = np.zeros(similarity.shape, dtype=bool)
        in_left[np.arange(40)[:, None], top_left] = True
        in_right = np.zeros(similarity.shape, dtype=bool)
        in_right[top_right, np.arange(33)[:, None]] = True
        er, ec = np.nonzero(in_left & in_right)
        assert np.array_equal(lefts, er) and np.array_equal(rights, ec)

    def test_clip_at_zero_channel(self):
        channels = random_channels(seed=13, num_channels=1)
        clipped = CosineChannels(channels.pairs, clip_at_zero=True)
        matrix = dense_of(clipped)
        assert matrix.min() >= 0.0
        idx, val = stream_topk(clipped, 4, block=10)
        rows = np.arange(matrix.shape[0])[:, None]
        np.testing.assert_allclose(val, matrix[rows, top_k_rows(matrix, 4)], rtol=0, atol=ATOL)

    def test_threshold_candidates_with_zero_norm_rows(self):
        # zero-norm factor rows similarity is exactly 0 on both axes: they
        # must appear for threshold <= 0 and vanish for any positive one
        rng = np.random.default_rng(17)
        left, right = rng.normal(size=(12, 5)), rng.normal(size=(9, 5))
        left[3] = 0.0
        right[[0, 7]] = 0.0
        channels = CosineChannels([ChannelPair.from_raw(left, right)])
        matrix = dense_of(channels)
        assert np.array_equal(matrix[3], np.zeros(9))
        for threshold in (-0.5, 0.0, 1e-9, 0.4):
            rows, cols, values = stream_threshold_candidates(channels, threshold, block=4)
            er, ec = np.where(matrix >= threshold)
            assert np.array_equal(rows, er) and np.array_equal(cols, ec)
            np.testing.assert_allclose(values, matrix[er, ec], rtol=0, atol=ATOL)

    def test_mutual_top_n_with_zero_norm_rows(self):
        rng = np.random.default_rng(19)
        a, b = rng.normal(size=(15, 4)), rng.normal(size=(11, 4))
        a[[2, 8]] = 0.0
        b[5] = 0.0
        lefts, rights = mutual_top_n(a, b, 3, block=5)
        similarity = cosine_similarity_matrix(a, b)
        top_left = top_k_rows(similarity, 3)
        top_right = top_k_rows(similarity.T, 3)
        in_left = np.zeros(similarity.shape, dtype=bool)
        in_left[np.arange(15)[:, None], top_left] = True
        in_right = np.zeros(similarity.shape, dtype=bool)
        in_right[top_right, np.arange(11)[:, None]] = True
        er, ec = np.nonzero(in_left & in_right)
        assert np.array_equal(lefts, er) and np.array_equal(rights, ec)

    def test_empty_channel_list_with_explicit_shape(self):
        # a KG pair without classes yields channel-less similarities; every
        # kernel must honour the explicit shape instead of crashing
        channels = CosineChannels([], shape=(6, 4))
        rows, cols, values = stream_threshold_candidates(channels, 0.5, block=3)
        assert rows.size == cols.size == values.size == 0
        rows, cols, values = stream_threshold_candidates(channels, -1.0, block=3)
        assert rows.size == 24  # the all-zero matrix passes a negative threshold
        idx, val = stream_topk(channels, 2, block=3)
        assert idx.shape == (6, 2) and np.array_equal(val, np.zeros((6, 2)))
        assert np.array_equal(stream_row_max(channels, block=3), np.zeros(6))

    def test_topk_clamps_k_beyond_num_cols(self):
        channels = random_channels(seed=23, n=7, m=5)
        matrix = dense_of(channels)
        idx, val = stream_topk(channels, 12, block=2)  # k > num_cols clamps to 5
        assert idx.shape == (7, 5)
        order = np.argsort(-matrix, axis=1, kind="stable")
        assert np.array_equal(idx, order)
        # mutual_top_n with n beyond both side widths keeps every pair
        rng = np.random.default_rng(29)
        a, b = rng.normal(size=(6, 3)), rng.normal(size=(4, 3))
        lefts, rights = mutual_top_n(a, b, 99, block=3)
        assert lefts.size == 24 and rights.size == 24


# ---------------------------------------------------------- zero-norm guard
class TestZeroNormGuard:
    def test_safe_normalize_zero_rows_stay_zero(self):
        x = np.array([[3.0, 4.0], [0.0, 0.0], [1e-300, 0.0]])
        normed = safe_l2_normalize(x)
        np.testing.assert_array_equal(normed[1], [0.0, 0.0])
        np.testing.assert_array_equal(normed[2], [0.0, 0.0])
        np.testing.assert_allclose(normed[0], [0.6, 0.8])
        assert np.all(np.isfinite(normed))

    def test_blocked_cosine_guards_zero_rows(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(9, 4))
        a[3] = 0.0  # zero-norm embedding row
        a[5] = 1e-14  # sub-eps norm: x / eps used to leak garbage similarities
        b = rng.normal(size=(6, 4))
        b[2] = 0.0
        for block in (2, 4096):  # 4096 covers the single-block delegation path
            sim = blocked_cosine_similarity(a, b, block_size=block)
            assert np.all(np.isfinite(sim))
            np.testing.assert_array_equal(sim[3], np.zeros(6))
            np.testing.assert_array_equal(sim[5], np.zeros(6))
            np.testing.assert_array_equal(sim[:, 2], np.zeros(9))

    def test_zero_rows_never_poison_topk(self):
        rng = np.random.default_rng(1)
        left = rng.normal(size=(8, 5))
        left[0] = 0.0
        right = rng.normal(size=(7, 5))
        channels = CosineChannels([ChannelPair.from_raw(left, right)])
        idx, val = stream_topk(channels, 3, block=4)
        assert np.all(np.isfinite(val))
        np.testing.assert_array_equal(val[0], np.zeros(3))  # all-tied at exactly 0


# -------------------------------------------------------- backend selection
class TestBackendSelection:
    def test_env_overrides_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMILARITY_BACKEND", "sharded")
        assert resolve_backend_name("dense") == "sharded"
        monkeypatch.delenv("REPRO_SIMILARITY_BACKEND")
        assert resolve_backend_name("dense") == "dense"
        assert resolve_backend_name(None) == "dense"
        assert resolve_backend_name("ann") == "ann"
        with pytest.raises(ValueError):
            resolve_backend_name("faiss")

    def test_workers_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMILARITY_WORKERS", "3")
        assert resolve_workers(1) == 3
        monkeypatch.delenv("REPRO_SIMILARITY_WORKERS")
        assert resolve_workers(None) == 1
        with pytest.raises(ValueError):
            resolve_workers(0)

    def test_config_validates_backend(self):
        config = DAAKGConfig(similarity_backend="sharded", similarity_workers=2)
        assert config.similarity_backend == "sharded"
        with pytest.raises(ValueError):
            DAAKGConfig(similarity_backend="faiss")
        with pytest.raises(ValueError):
            DAAKGConfig(similarity_workers=0)
        # round-trips through the JSON form (checkpoint manifests)
        assert DAAKGConfig.from_json(config.to_json()).similarity_backend == "sharded"


# ------------------------------------------------------ fitted-model parity
def forced_engine(model, name: str, block_size: int = 64) -> SimilarityEngine:
    """An engine pinned to ``name`` regardless of REPRO_SIMILARITY_BACKEND."""
    from repro.runtime import create_backend

    engine = SimilarityEngine(model, block_size=block_size)
    engine.backend = create_backend(engine, name)
    return engine


@pytest.fixture(scope="module")
def engines(fitted_pipeline):
    """The fitted model's engine plus a fresh engine on the *other* backend."""
    model = fitted_pipeline.model
    own = model.similarity
    other_name = "sharded" if own.backend_name == "dense" else "dense"
    other = forced_engine(model, other_name)
    dense = own if own.backend_name == "dense" else other
    sharded = other if own.backend_name == "dense" else own
    return dense, sharded


KINDS = [ElementKind.ENTITY, ElementKind.RELATION, ElementKind.CLASS]


class TestBackendParity:
    @pytest.mark.parametrize("kind", KINDS)
    def test_full_matrix_parity(self, engines, kind):
        dense, sharded = engines
        np.testing.assert_allclose(
            sharded.matrix(kind), dense.matrix(kind), rtol=0, atol=ATOL
        )

    @staticmethod
    def _assert_same_topk(d_idx, d_val, s_idx, s_val):
        """Equal top-k up to tie order.

        The dense path's argpartition orders exact ties arbitrarily; the
        sharded merge orders them by ascending index.  Canonicalising both
        sides by (their own value desc, index asc) makes the comparison
        order-insensitive for ties while still exact for distinct values.
        """
        np.testing.assert_allclose(s_val, d_val, rtol=0, atol=ATOL)
        d_val_c, d_idx_c = canonical_topk(d_val, d_idx, d_idx.shape[1])
        s_val_c, s_idx_c = canonical_topk(s_val, s_idx, s_idx.shape[1])
        assert np.array_equal(d_idx_c, s_idx_c)
        np.testing.assert_allclose(s_val_c, d_val_c, rtol=0, atol=ATOL)

    @pytest.mark.parametrize("kind", KINDS)
    def test_top_k_indices_and_values(self, engines, kind):
        dense, sharded = engines
        k = 10
        dt = dense.top_k_table(kind, k)
        st = sharded.top_k_table(kind, k)
        self._assert_same_topk(dt.left_indices, dt.left_values, st.left_indices, st.left_values)
        self._assert_same_topk(
            dt.right_indices, dt.right_values, st.right_indices, st.right_values
        )

    @pytest.mark.parametrize("kind", KINDS)
    def test_rows_cols_row_max(self, engines, kind):
        dense, sharded = engines
        num_rows, num_cols = dense.shape(kind)
        assert sharded.shape(kind) == (num_rows, num_cols)
        if num_rows == 0 or num_cols == 0:
            pytest.skip("empty similarity")
        idx = np.arange(0, num_rows, 2)
        np.testing.assert_allclose(
            sharded.rows(kind, idx), dense.rows(kind, idx), rtol=0, atol=ATOL
        )
        jdx = np.arange(0, num_cols, 3)
        np.testing.assert_allclose(
            sharded.cols(kind, jdx), dense.cols(kind, jdx), rtol=0, atol=ATOL
        )
        np.testing.assert_allclose(sharded.row_max(kind), dense.row_max(kind), rtol=0, atol=ATOL)
        np.testing.assert_allclose(sharded.col_max(kind), dense.col_max(kind), rtol=0, atol=ATOL)
        s_row, s_col = sharded.row_col_max(kind)
        np.testing.assert_array_equal(s_row, sharded.row_max(kind))
        np.testing.assert_array_equal(s_col, sharded.col_max(kind))

    def test_evaluate_metrics_identical(self, fitted_pipeline, engines):
        dense, sharded = engines
        gold = fitted_pipeline.pair.entity_match_ids(fitted_pipeline.pair.test_entity_pairs)
        d = evaluate_alignment_from_engine(dense, ElementKind.ENTITY, gold)
        s = evaluate_alignment_from_engine(sharded, ElementKind.ENTITY, gold)
        assert d == s
        # and the engine evaluation equals the legacy full-matrix evaluation
        legacy = evaluate_alignment(dense.matrix(ElementKind.ENTITY), gold)
        assert d == legacy

    def test_mining_identical(self, engines):
        dense, sharded = engines
        d = mine_potential_matches_from_engine(dense, ElementKind.ENTITY, threshold=0.6)
        s = mine_potential_matches_from_engine(sharded, ElementKind.ENTITY, threshold=0.6)
        assert [(m.left, m.right) for m in d] == [(m.left, m.right) for m in s]
        np.testing.assert_allclose(
            [m.soft_label for m in s], [m.soft_label for m in d], rtol=0, atol=ATOL
        )
        legacy = mine_potential_matches(dense.matrix(ElementKind.ENTITY), threshold=0.6)
        assert [(m.left, m.right) for m in legacy] == [(m.left, m.right) for m in d]

    def test_calibration_identical(self, fitted_pipeline, engines):
        dense, sharded = engines
        rng = np.random.default_rng(0)
        num_rows, num_cols = dense.shape(ElementKind.ENTITY)
        lefts = rng.integers(0, num_rows, size=20)
        rights = rng.integers(0, num_cols, size=20)
        calibrator = fitted_pipeline.calibrator
        d = calibrator.pair_probabilities_from_engine(dense, ElementKind.ENTITY, lefts, rights)
        s = calibrator.pair_probabilities_from_engine(sharded, ElementKind.ENTITY, lefts, rights)
        np.testing.assert_allclose(s, d, rtol=0, atol=ATOL)
        # the dense engine path must be bit-exact with the historical
        # probability-matrix lookup the active loop used before the backends
        # (the slab-based pair_probabilities can differ in the last ulp —
        # column-sliced reductions round differently)
        legacy = calibrator.probability_matrix(
            dense.matrix(ElementKind.ENTITY), ElementKind.ENTITY
        )[lefts, rights]
        np.testing.assert_array_equal(d, legacy)
        slab_based = calibrator.pair_probabilities(
            dense.matrix(ElementKind.ENTITY), ElementKind.ENTITY, lefts, rights
        )
        np.testing.assert_allclose(slab_based, d, rtol=0, atol=ATOL)

    def test_parity_survives_landmark_update(self, fitted_pipeline, engines):
        dense, sharded = engines
        model = fitted_pipeline.model
        previous = model._landmarks
        gold = fitted_pipeline.pair.entity_match_ids(fitted_pipeline.pair.test_entity_pairs)
        try:
            extended = np.unique(np.concatenate([previous, gold[:5]]), axis=0)
            model.set_landmarks(extended)
            dt = dense.top_k_table(ElementKind.ENTITY, 5)
            st = sharded.top_k_table(ElementKind.ENTITY, 5)
            self._assert_same_topk(
                dt.left_indices, dt.left_values, st.left_indices, st.left_values
            )
            d = evaluate_alignment_from_engine(dense, ElementKind.ENTITY, gold)
            s = evaluate_alignment_from_engine(sharded, ElementKind.ENTITY, gold)
            assert d == s
        finally:
            model.set_landmarks(previous)


# ------------------------------------------------------------ serving parity
class TestServingParity:
    @pytest.fixture()
    def two_services(self, fitted_pipeline):
        """One service per backend, frozen from the same fitted state."""
        model = fitted_pipeline.model
        original = model.similarity
        services = {}
        try:
            for name in ("dense", "sharded"):
                if original.backend_name == name:
                    model.similarity = original
                else:
                    model.similarity = forced_engine(model, name)
                services[name] = AlignmentService.from_pipeline(fitted_pipeline)
        finally:
            model.similarity = original
        return services["dense"], services["sharded"]

    def test_queries_agree(self, fitted_pipeline, two_services):
        dense, sharded = two_services
        uris = list(fitted_pipeline.kg1.entities[:6])
        for d_row, s_row in zip(dense.top_k_alignments(uris, k=5), sharded.top_k_alignments(uris, k=5)):
            assert [name for name, _ in d_row] == [name for name, _ in s_row]
            np.testing.assert_allclose(
                [v for _, v in s_row], [v for _, v in d_row], rtol=0, atol=ATOL
            )
        pairs = [
            (fitted_pipeline.kg1.entities[i], fitted_pipeline.kg2.entities[j])
            for i, j in ((0, 0), (2, 5), (7, 1))
        ]
        np.testing.assert_allclose(
            sharded.score_pairs(pairs), dense.score_pairs(pairs), rtol=0, atol=ATOL
        )
        np.testing.assert_allclose(
            sharded.pair_probabilities(pairs), dense.pair_probabilities(pairs), rtol=0, atol=ATOL
        )

    def test_fold_in_agrees(self, fitted_pipeline, two_services):
        dense, sharded = two_services
        kg2 = fitted_pipeline.kg2
        victim = max(range(kg2.num_entities), key=kg2.entity_degree)
        triples = [
            ("folded:parity", kg2.relations[r], kg2.entities[t])
            for r, t in kg2.out_edges(victim)[:6]
        ]
        dense.fold_in("folded:parity", triples)
        sharded.fold_in("folded:parity", triples)
        probes = [(fitted_pipeline.kg1.entities[i], "folded:parity") for i in range(5)]
        np.testing.assert_allclose(
            sharded.score_pairs(probes), dense.score_pairs(probes), rtol=0, atol=ATOL
        )
        # the folded column participates identically in ranked queries: same
        # rank and same score on both backends (deep ranks can contain exact
        # ties whose order is backend-arbitrary, so compare the fold itself)
        uris = [fitted_pipeline.kg1.entities[0]]
        d_top = dense.top_k_alignments(uris, k=kg2.num_entities + 1)[0]
        s_top = sharded.top_k_alignments(uris, k=kg2.num_entities + 1)[0]
        d_rank = [name for name, _ in d_top].index("folded:parity")
        s_rank = [name for name, _ in s_top].index("folded:parity")
        assert d_rank == s_rank
        assert s_top[s_rank][1] == pytest.approx(d_top[d_rank][1], abs=ATOL)
        np.testing.assert_allclose(
            [v for _, v in s_top], [v for _, v in d_top], rtol=0, atol=ATOL
        )

    def test_tokens_name_the_backend(self, two_services):
        dense, sharded = two_services
        assert "dense" in dense.state_token
        assert "sharded" in sharded.state_token
        assert dense.state_token != sharded.state_token


# -------------------------------------------------------- checkpoint parity
class TestBackendPersistence:
    @pytest.fixture(scope="class")
    def sharded_pipeline(self, small_benchmark):
        from repro import DAAKG
        from repro.alignment.trainer import AlignmentTrainingConfig
        from repro.embedding.trainer import EmbeddingTrainingConfig

        config = DAAKGConfig(
            base_model="transe",
            entity_dim=8,
            class_dim=4,
            pretrain=EmbeddingTrainingConfig(epochs=2),
            alignment=AlignmentTrainingConfig(
                rounds=1, epochs_per_round=4, num_negatives=3,
                embedding_batches_per_round=1, embedding_batch_size=128,
            ),
            similarity_backend="sharded",
            seed=0,
        )
        return DAAKG(small_benchmark, config).fit()

    def test_round_trip_preserves_metrics_and_seeds_topk(self, sharded_pipeline, tmp_path):
        pipeline = sharded_pipeline
        # populate a current-token top-k table so the checkpoint carries it
        table = pipeline.model.similarity.top_k_table(ElementKind.ENTITY, 5)
        before = {k: v.as_dict() for k, v in pipeline.evaluate().items()}
        pipeline.save(tmp_path / "ckpt")

        from repro import DAAKG, load_checkpoint

        manifest = load_checkpoint(tmp_path / "ckpt").manifest
        restored = DAAKG.load(tmp_path / "ckpt")
        if restored.model.similarity.backend_name == manifest["similarity_backend"]:
            # the saved table was re-seeded: identical arrays, no recompute
            seeded = restored.model.similarity._top_k[(ElementKind.ENTITY, 5)][1]
            assert np.array_equal(seeded.left_indices, table.left_indices)
            np.testing.assert_array_equal(seeded.left_values, table.left_values)
        after = {k: v.as_dict() for k, v in restored.evaluate().items()}
        assert before == after

    def test_manifest_records_backend(self, sharded_pipeline, tmp_path):
        # a freshly-computed table is current for the engine's token, so the
        # checkpoint carries it (fit-time tables are stale by the last step)
        sharded_pipeline.model.similarity.top_k_table(ElementKind.ENTITY, 5)
        sharded_pipeline.save(tmp_path / "ckpt")
        from repro import load_checkpoint

        checkpoint = load_checkpoint(tmp_path / "ckpt")
        # env override may force either backend at restore time; the manifest
        # records what the checkpoint was written with
        assert checkpoint.manifest["similarity_backend"] == (
            sharded_pipeline.model.similarity.backend_name
        )
        assert checkpoint.manifest["config"]["similarity_backend"] == "sharded"
        assert any(key.startswith("topk/") for key in checkpoint.arrays)
