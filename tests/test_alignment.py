"""Tests for the joint alignment model and its supporting components."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.alignment import (
    AlignmentCalibrator,
    AlignmentTrainingConfig,
    CalibrationConfig,
    JointAlignmentModel,
    JointAlignmentTrainer,
    entity_weights,
    evaluate_alignment,
    f1_score,
    greedy_match,
    hits_at_k,
    mean_class_embeddings,
    mean_reciprocal_rank,
    mean_relation_embeddings,
    mine_potential_matches,
    precision_recall_f1,
    resolve_conflicts,
)
from repro.alignment.propagation import StructuralPropagation, normalized_adjacency
from repro.embedding import EntityClassScorer, TransE
from repro.kg.elements import ElementKind


@pytest.fixture(scope="module")
def joint_setup(tiny_pair):
    kg1 = tiny_pair.kg1.with_inverse_relations()
    kg2 = tiny_pair.kg2.with_inverse_relations()
    from repro.kg.pair import AlignedKGPair

    pair = AlignedKGPair(
        tiny_pair.name, kg1, kg2, tiny_pair.entity_alignment, tiny_pair.relation_alignment,
        tiny_pair.class_alignment, tiny_pair.train_entity_pairs, tiny_pair.valid_entity_pairs,
        tiny_pair.test_entity_pairs,
    )
    m1, m2 = TransE(kg1, dim=8, rng=0), TransE(kg2, dim=8, rng=1)
    s1 = EntityClassScorer(kg1, 8, 4, rng=0)
    s2 = EntityClassScorer(kg2, 8, 4, rng=1)
    model = JointAlignmentModel(pair, m1, m2, s1, s2, rng=0)
    return pair, model


class TestEvaluationMetrics:
    def test_hits_at_k_perfect(self):
        sim = np.eye(3)
        gold = np.array([[0, 0], [1, 1], [2, 2]])
        assert hits_at_k(sim, gold, 1) == 1.0
        assert mean_reciprocal_rank(sim, gold) == 1.0

    def test_hits_at_k_partial(self):
        sim = np.array([[0.9, 0.1], [0.8, 0.2]])
        gold = np.array([[0, 0], [1, 1]])
        assert hits_at_k(sim, gold, 1) == 0.5
        assert hits_at_k(sim, gold, 10) == 1.0

    def test_mrr_second_rank(self):
        sim = np.array([[0.5, 0.9]])
        gold = np.array([[0, 0]])
        assert mean_reciprocal_rank(sim, gold) == pytest.approx(0.5)

    def test_greedy_match_is_one_to_one(self):
        sim = np.array([[0.9, 0.8], [0.85, 0.1]])
        matches = greedy_match(sim)
        assert len(matches) == 2
        assert len({i for i, _ in matches}) == 2
        assert len({j for _, j in matches}) == 2

    def test_greedy_match_respects_threshold(self):
        sim = np.array([[0.9, 0.1], [0.2, 0.3]])
        assert greedy_match(sim, threshold=0.5) == [(0, 0)]

    def test_precision_recall_f1(self):
        predicted = [(0, 0), (1, 1), (2, 5)]
        gold = {(0, 0), (1, 1), (3, 3)}
        precision, recall, f1 = precision_recall_f1(predicted, gold)
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(2 / 3)
        assert f1 == pytest.approx(2 / 3)

    def test_empty_predictions(self):
        assert precision_recall_f1([], {(0, 0)}) == (0.0, 0.0, 0.0)

    def test_f1_zero_division(self):
        assert f1_score(0.0, 0.0) == 0.0

    def test_evaluate_alignment_bundle(self):
        sim = np.eye(4)
        gold = np.array([[i, i] for i in range(4)])
        scores = evaluate_alignment(sim, gold)
        assert scores.hits_at_1 == 1.0 and scores.f1 == 1.0

    def test_evaluate_alignment_empty_gold(self):
        scores = evaluate_alignment(np.eye(3), np.empty((0, 2)))
        assert scores.f1 == 0.0

    @given(st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_perfect_similarity_gives_perfect_scores(self, n):
        sim = np.eye(n)
        gold = np.array([[i, i] for i in range(n)])
        scores = evaluate_alignment(sim, gold)
        assert scores.hits_at_1 == 1.0
        assert scores.mrr == 1.0
        assert scores.f1 == 1.0

    @given(st.integers(2, 5), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_metrics_are_bounded(self, n, seed):
        rng = np.random.default_rng(seed)
        sim = rng.random((n, n))
        gold = np.array([[i, i] for i in range(n)])
        scores = evaluate_alignment(sim, gold)
        for value in scores.as_dict().values():
            assert 0.0 <= value <= 1.0


class TestCalibration:
    def test_probability_matrix_shape_and_range(self):
        sim = np.random.default_rng(0).random((5, 4))
        calibrator = AlignmentCalibrator()
        probabilities = calibrator.probability_matrix(sim, ElementKind.ENTITY)
        assert probabilities.shape == sim.shape
        assert np.all(probabilities >= 0) and np.all(probabilities <= 1)

    def test_true_match_gets_high_probability(self):
        sim = np.full((3, 3), 0.1)
        np.fill_diagonal(sim, 0.95)
        calibrator = AlignmentCalibrator(CalibrationConfig(z_entity=0.05))
        probabilities = calibrator.probability_matrix(sim, ElementKind.ENTITY)
        assert probabilities[0, 0] > 0.5
        assert probabilities[0, 1] < 0.5

    def test_min_of_both_directions(self):
        sim = np.array([[0.9, 0.9], [0.1, 0.1]])
        calibrator = AlignmentCalibrator()
        row, col = calibrator.directional_probabilities(sim, ElementKind.RELATION)
        combined = calibrator.probability_matrix(sim, ElementKind.RELATION)
        assert np.allclose(combined, np.minimum(row, col))

    def test_temperature_validation(self):
        with pytest.raises(ValueError):
            CalibrationConfig(z_entity=0.0)

    def test_kind_specific_temperature(self):
        config = CalibrationConfig(z_entity=0.05, z_relation=0.2, z_class=0.3)
        assert config.temperature(ElementKind.RELATION) == 0.2
        assert config.temperature(ElementKind.CLASS) == 0.3


class TestSemiSupervision:
    def test_resolve_conflicts_keeps_best(self):
        kept = resolve_conflicts([(0, 0, 0.9), (0, 1, 0.8), (1, 1, 0.7), (2, 2, 0.5)])
        assert {pair[:2] for pair in kept} == {(0, 0), (1, 1), (2, 2)}

    def test_mine_potential_matches_threshold_and_exclusions(self):
        sim = np.array([[0.95, 0.2], [0.1, 0.92], [0.3, 0.91]])
        mined = mine_potential_matches(sim, threshold=0.9)
        pairs = {(m.left, m.right) for m in mined}
        assert (0, 0) in pairs and (1, 1) in pairs
        assert (2, 1) not in pairs  # conflict resolution keeps the better row
        mined = mine_potential_matches(sim, threshold=0.9, exclude_left={0})
        assert all(m.left != 0 for m in mined)

    def test_mine_respects_max_candidates(self):
        sim = np.full((5, 5), 0.95)
        mined = mine_potential_matches(sim, threshold=0.9, max_candidates=2)
        assert len(mined) == 2

    def test_mine_empty_matrix(self):
        assert mine_potential_matches(np.empty((0, 0)), 0.5) == []


class TestMeanEmbeddings:
    def test_entity_weights_shapes_and_bounds(self):
        sim = np.random.default_rng(0).uniform(-1, 1, size=(4, 6))
        w1, w2 = entity_weights(sim)
        assert w1.shape == (4,) and w2.shape == (6,)
        assert np.all(w1 >= 0) and np.all(w1 <= 1)

    def test_mean_relation_embeddings_translation(self, tiny_pair):
        kg = tiny_pair.kg1
        model = TransE(kg, dim=8, rng=0)
        entities = model.entity_matrix()
        weights = np.ones(kg.num_entities)
        means = mean_relation_embeddings(kg, model, entities, weights)
        assert means.shape == (kg.num_relations, 8)
        # with uniform weights the mean is the average of (tail - head)
        r = 0
        rows = kg.triples_of_relation(r)
        expected = np.mean([entities[t] - entities[h] for h, _, t in rows], axis=0)
        assert np.allclose(means[r], expected)

    def test_mean_class_embeddings_weighted(self, tiny_pair):
        kg = tiny_pair.kg1
        entities = np.arange(kg.num_entities * 2, dtype=float).reshape(kg.num_entities, 2)
        weights = np.zeros(kg.num_entities)
        weights[0] = 1.0
        means = mean_class_embeddings(kg, entities, weights)
        cls = kg.classes_of(0)[0]
        assert np.allclose(means[cls], entities[0])

    def test_zero_weights_fall_back_to_unweighted_mean(self, tiny_pair):
        kg = tiny_pair.kg1
        entities = np.ones((kg.num_entities, 3))
        means = mean_class_embeddings(kg, entities, np.zeros(kg.num_entities))
        assert np.allclose(means[0], 1.0)


class TestPropagation:
    def test_normalized_adjacency_rows_sum_to_one(self, tiny_pair):
        adjacency = normalized_adjacency(tiny_pair.kg1)
        sums = np.asarray(adjacency.sum(axis=1)).ravel()
        connected = sums > 0
        assert np.allclose(sums[connected], 1.0)

    def test_propagation_similarity_favours_gold_matches(self, tiny_pair):
        propagation = StructuralPropagation(tiny_pair.kg1, tiny_pair.kg2, hops=2)
        landmarks = tiny_pair.entity_match_ids(tiny_pair.train_entity_pairs)
        sim = propagation.similarity_matrix(landmarks)
        assert sim.shape == (tiny_pair.kg1.num_entities, tiny_pair.kg2.num_entities)
        gold = tiny_pair.entity_match_ids()
        on_gold = np.mean([sim[i, j] for i, j in gold])
        assert on_gold >= sim.mean() - 1e-9

    def test_no_landmarks_gives_zero_channel(self, tiny_pair):
        propagation = StructuralPropagation(tiny_pair.kg1, tiny_pair.kg2)
        sim = propagation.similarity_matrix(np.empty((0, 2)))
        assert np.allclose(sim, 0.0)

    def test_config_validation(self, tiny_pair):
        with pytest.raises(ValueError):
            StructuralPropagation(tiny_pair.kg1, tiny_pair.kg2, hops=0)
        with pytest.raises(ValueError):
            StructuralPropagation(tiny_pair.kg1, tiny_pair.kg2, alpha=0.0)


class TestJointAlignmentModel:
    def test_similarity_matrices_shapes(self, joint_setup):
        pair, model = joint_setup
        assert model.entity_similarity_matrix().shape == (
            pair.kg1.num_entities, pair.kg2.num_entities
        )
        assert model.relation_similarity_matrix().shape == (
            pair.kg1.num_relations, pair.kg2.num_relations
        )
        assert model.class_similarity_matrix().shape == (
            pair.kg1.num_classes, pair.kg2.num_classes
        )

    def test_pair_similarity_dispatch(self, joint_setup):
        _, model = joint_setup
        pairs = np.array([[0, 0], [1, 1]])
        for kind in ElementKind:
            values = model.pair_similarity(kind, pairs)
            assert values.shape == (2,)
            assert np.all(np.abs(values.numpy()) <= 1.0 + 1e-6)

    def test_structural_channel_only_after_landmarks(self, joint_setup):
        _, model = joint_setup
        model.set_landmarks(np.empty((0, 2)))
        structural = model.structural_similarity_matrix()
        assert np.allclose(structural, 0.0)
        model.set_landmarks(np.array([[0, 0]]))
        assert model.structural_similarity_matrix().max() > 0

    def test_entity_similarity_is_max_of_channels(self, joint_setup):
        _, model = joint_setup
        model.set_landmarks(np.array([[0, 0], [1, 1]]))
        combined = model.entity_similarity_matrix()
        embedding = model.embedding_entity_similarity_matrix()
        structural = model.structural_similarity_matrix()
        assert np.allclose(combined, np.maximum(embedding, structural))

    def test_entity_weights_from_snapshot(self, joint_setup):
        _, model = joint_setup
        w1, w2 = model.entity_weight_vectors()
        assert w1.shape[0] == model.kg1.num_entities
        assert np.all(w1 >= 0) and np.all(w1 <= 1)

    def test_parameter_summary(self, joint_setup):
        _, model = joint_setup
        summary = model.parameter_summary()
        assert summary["mapping_matrices"] > 0
        assert "class_scorers" in summary

    def test_mismatched_dims_rejected(self, joint_setup, tiny_pair):
        pair, _ = joint_setup
        with pytest.raises(ValueError):
            JointAlignmentModel(pair, TransE(pair.kg1, dim=8, rng=0), TransE(pair.kg2, dim=16, rng=0))

    def test_single_class_scorer_rejected(self, joint_setup):
        pair, model = joint_setup
        with pytest.raises(ValueError):
            JointAlignmentModel(
                pair, model.model1, model.model2, model.class_scorer1, None
            )


class TestJointAlignmentTrainer:
    def test_training_improves_seed_similarity(self, joint_setup):
        pair, _ = joint_setup
        m1, m2 = TransE(pair.kg1, dim=8, rng=2), TransE(pair.kg2, dim=8, rng=3)
        model = JointAlignmentModel(pair, m1, m2, rng=2)
        trainer = JointAlignmentTrainer(
            model,
            AlignmentTrainingConfig(rounds=2, epochs_per_round=15, num_negatives=4,
                                    semi_supervised=False),
            seed=0,
        )
        seeds = pair.entity_match_ids(pair.train_entity_pairs)
        before = model.entity_pair_similarity(seeds).numpy().mean()
        trainer.add_matches(ElementKind.ENTITY, seeds)
        trainer.train()
        after = model.entity_pair_similarity(seeds).numpy().mean()
        assert after > before

    def test_fine_tune_adds_labels_and_runs(self, joint_setup):
        pair, _ = joint_setup
        m1, m2 = TransE(pair.kg1, dim=8, rng=4), TransE(pair.kg2, dim=8, rng=5)
        model = JointAlignmentModel(pair, m1, m2, rng=4)
        trainer = JointAlignmentTrainer(
            model, AlignmentTrainingConfig(rounds=1, epochs_per_round=5, num_negatives=2), seed=0
        )
        trainer.add_matches(ElementKind.ENTITY, pair.entity_match_ids(pair.train_entity_pairs))
        trainer.train()
        history = trainer.fine_tune(
            new_matches={ElementKind.RELATION: [(0, 0)]},
            new_non_matches={ElementKind.ENTITY: [(0, 1)]},
            epochs=3,
        )
        assert len(history) == 3
        assert (0, 0) in trainer.labels.matches[ElementKind.RELATION]
        assert (0, 1) in trainer.labels.non_matches[ElementKind.ENTITY]

    def test_duplicate_labels_are_ignored(self, joint_setup):
        pair, model = joint_setup
        trainer = JointAlignmentTrainer(model, AlignmentTrainingConfig(), seed=0)
        trainer.add_matches(ElementKind.ENTITY, [(0, 0), (0, 0)])
        assert len(trainer.labels.matches[ElementKind.ENTITY]) == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AlignmentTrainingConfig(rounds=0)
        with pytest.raises(ValueError):
            AlignmentTrainingConfig(semi_threshold=0.0)
        with pytest.raises(ValueError):
            AlignmentTrainingConfig(hard_negative_fraction=2.0)


class TestLabelStoreArrayCache:
    def test_arrays_cached_between_reads(self):
        from repro.alignment.trainer import LabelStore

        store = LabelStore()
        store.add(ElementKind.ENTITY, (0, 1), True)
        first = store.match_array(ElementKind.ENTITY)
        assert store.match_array(ElementKind.ENTITY) is first
        assert first.shape == (1, 2)

    def test_add_invalidates_only_affected_cache(self):
        from repro.alignment.trainer import LabelStore

        store = LabelStore()
        store.add(ElementKind.ENTITY, (0, 1), True)
        store.add(ElementKind.ENTITY, (2, 3), False)
        matches = store.match_array(ElementKind.ENTITY)
        non_matches = store.non_match_array(ElementKind.ENTITY)
        relations = store.match_array(ElementKind.RELATION)
        store.add(ElementKind.ENTITY, (4, 5), True)
        updated = store.match_array(ElementKind.ENTITY)
        assert updated is not matches
        assert updated.tolist() == [[0, 1], [4, 5]]
        # untouched kinds/polarities keep their cached arrays
        assert store.non_match_array(ElementKind.ENTITY) is non_matches
        assert store.match_array(ElementKind.RELATION) is relations

    def test_duplicate_add_keeps_cache(self):
        from repro.alignment.trainer import LabelStore

        store = LabelStore()
        store.add(ElementKind.CLASS, (1, 1), True)
        cached = store.match_array(ElementKind.CLASS)
        store.add(ElementKind.CLASS, (1, 1), True)
        assert store.match_array(ElementKind.CLASS) is cached

    def test_empty_arrays_have_pair_shape(self):
        from repro.alignment.trainer import LabelStore

        store = LabelStore()
        assert store.match_array(ElementKind.ENTITY).shape == (0, 2)
        assert store.non_match_array(ElementKind.RELATION).shape == (0, 2)
