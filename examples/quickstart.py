"""Quickstart: align two knowledge graphs with DAAKG.

Generates the D-W style benchmark pair, trains the DAAKG pipeline on the
training split of gold entity matches, prints evaluation metrics for entity,
relation and class alignment, and shows a few predicted matches.

Run with::

    python examples/quickstart.py
"""

from repro import DAAKG, DAAKGConfig, ElementKind, make_benchmark
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.utils.logging import enable_console_logging


def main() -> None:
    enable_console_logging()

    # 1. A benchmark dataset: two heterogeneous views of a synthetic world KG
    #    plus gold entity/relation/class matches (OpenEA-style).
    pair = make_benchmark("D-W", seed=0)
    print("Dataset:", pair.name)
    for key, value in pair.summary().items():
        print(f"  {key:>18}: {value}")

    # 2. Configure and fit the pipeline.  TransE keeps the example fast; use
    #    base_model="compgcn" for the stronger (slower) GNN encoder.
    config = DAAKGConfig(
        base_model="transe",
        alignment=AlignmentTrainingConfig(rounds=3, epochs_per_round=20, num_negatives=10,
                                          embedding_batches_per_round=4, embedding_batch_size=512),
        seed=0,
    )
    daakg = DAAKG(pair, config)
    daakg.fit()
    print(f"\nTrained in {daakg.training_time.elapsed:.1f}s; "
          f"parameters: {daakg.parameter_summary()}")

    # 3. Evaluate on the unseen test matches.
    scores = daakg.evaluate()
    print("\nAlignment quality (test split):")
    for kind, score in scores.items():
        print(f"  {kind:>8}: " + "  ".join(f"{k}={v:.3f}" for k, v in score.as_dict().items()))

    # 4. Inspect a few predicted matches per element kind.
    for kind in (ElementKind.ENTITY, ElementKind.RELATION, ElementKind.CLASS):
        predicted = daakg.predict_matches(kind, threshold=0.5)[:5]
        print(f"\nTop predicted {kind.value} matches:")
        for left, right in predicted:
            print(f"  {left}  <->  {right}")


if __name__ == "__main__":
    main()
