"""Partition-parallel campaigns: cut → train in parallel → merge → serve.

Walks the partition-parallel campaign lifecycle:

1. cut an aligned KG pair into ρ-bounded cross-linked sub-pairs
   (``repro.kg.partition``),
2. run one independent DAAKG campaign per partition on the GIL-breaking
   **process executor** (``PartitionedCampaign.run`` — results are
   byte-identical for any executor backend and any worker count),
3. fold the per-partition similarity states into one merged, streamed state
   and evaluate it against the original gold matches,
4. checkpoint the whole campaign (one manifest, one directory per
   partition) and resume it,
5. serve the merged state through ``AlignmentService`` (atomic hot-swap).

Run with::

    python examples/partitioned_campaign.py
"""

import tempfile
from pathlib import Path

from repro import DAAKGConfig, PartitionConfig, PartitionedCampaign, make_benchmark
from repro.active.loop import ActiveLearningConfig
from repro.active.pool import PoolConfig
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.embedding.trainer import EmbeddingTrainingConfig
from repro.serving import AlignmentService
from repro.utils.logging import enable_console_logging


def main() -> None:
    enable_console_logging()
    workdir = Path(tempfile.mkdtemp(prefix="daakg-campaign-"))

    # 1. Cut the pair into partitions and build the campaign.
    pair = make_benchmark("D-W", scale=0.3, seed=0)
    config = DAAKGConfig(
        base_model="transe",
        entity_dim=16,
        class_dim=4,
        pretrain=EmbeddingTrainingConfig(epochs=4),
        alignment=AlignmentTrainingConfig(
            rounds=2,
            epochs_per_round=10,
            num_negatives=5,
            embedding_batches_per_round=2,
            embedding_batch_size=256,
        ),
        pool=PoolConfig(top_n=20),
        similarity_backend="sharded",
        seed=0,
    )
    campaign = PartitionedCampaign(
        pair,
        config,
        strategy="uncertainty",
        active_config=ActiveLearningConfig(batch_size=10, num_batches=2, fine_tune_epochs=5),
        # executor="process" ships each piece to a worker process; "auto"
        # would pick the same thing here whenever the machine has >1 core
        partition=PartitionConfig(num_partitions=3, workers=2, executor="process"),
    )
    print("partitioning:", campaign.partition.summary())
    print("executor:", campaign.executor_name)

    # 2. Run every partition's campaign (fit + active loop) on the executor.
    result = campaign.run(max_batches=1)
    print(
        f"first round: {result.seconds:.2f}s across {campaign.num_partitions} "
        f"partitions on the {result.executor} executor"
    )

    # 3. Checkpoint mid-campaign, resume, and finish the budget.
    checkpoint_dir = workdir / "campaign"
    campaign.save(checkpoint_dir)
    resumed = PartitionedCampaign.load(checkpoint_dir)
    resumed.run()

    # 4. Evaluate the merged state over the original pair's gold matches.
    scores = resumed.evaluate()
    print("merged entity scores:", scores["entity"].as_dict())

    # 5. Serve the merged state; hot-swap after further training.
    service = AlignmentService.from_campaign(resumed)
    queries = pair.kg1.entities[:3]
    for uri, answers in zip(queries, service.top_k_alignments(queries, k=3)):
        print(f"  top-3 for {uri}: {answers}")
    campaign.run()  # the original object finishes its budget too
    token = service.hot_swap(campaign)
    print("hot-swapped serving state to", token)
    print("done; artifacts under", workdir)


if __name__ == "__main__":
    main()
