"""Using DAAKG on your own data.

Shows the two supported routes into the library:

1. build :class:`repro.kg.KnowledgeGraph` objects programmatically from triples
   (the small movie-domain example below), and
2. write / read the OpenEA-style on-disk layout, which is also how you would
   load the real OpenEA benchmark dumps.

Run with::

    python examples/custom_dataset.py
"""

import tempfile
from pathlib import Path

from repro import DAAKG, DAAKGConfig, ElementKind
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.kg import (
    AlignedKGPair,
    GoldAlignment,
    KnowledgeGraph,
    load_openea_directory,
    save_openea_directory,
)
from repro.kg.pair import SplitRatios


def build_movie_kgs() -> AlignedKGPair:
    """Two tiny hand-written movie KGs with heterogeneous schemata."""
    kg1 = KnowledgeGraph.from_triples(
        "imdb",
        triples=[
            ("imdb:inception", "imdb:directedBy", "imdb:nolan"),
            ("imdb:inception", "imdb:starring", "imdb:dicaprio"),
            ("imdb:interstellar", "imdb:directedBy", "imdb:nolan"),
            ("imdb:interstellar", "imdb:starring", "imdb:mcconaughey"),
            ("imdb:titanic", "imdb:directedBy", "imdb:cameron"),
            ("imdb:titanic", "imdb:starring", "imdb:dicaprio"),
            ("imdb:avatar", "imdb:directedBy", "imdb:cameron"),
        ],
        type_triples=[
            ("imdb:inception", "imdb:Film"),
            ("imdb:interstellar", "imdb:Film"),
            ("imdb:titanic", "imdb:Film"),
            ("imdb:avatar", "imdb:Film"),
            ("imdb:nolan", "imdb:Person"),
            ("imdb:cameron", "imdb:Person"),
            ("imdb:dicaprio", "imdb:Person"),
            ("imdb:mcconaughey", "imdb:Person"),
        ],
    )
    kg2 = KnowledgeGraph.from_triples(
        "wiki",
        triples=[
            ("wiki:Q25188", "wiki:director", "wiki:Q25191"),
            ("wiki:Q25188", "wiki:castMember", "wiki:Q38111"),
            ("wiki:Q13417189", "wiki:director", "wiki:Q25191"),
            ("wiki:Q44578", "wiki:director", "wiki:Q42574"),
            ("wiki:Q44578", "wiki:castMember", "wiki:Q38111"),
        ],
        type_triples=[
            ("wiki:Q25188", "wiki:CreativeWork"),
            ("wiki:Q13417189", "wiki:CreativeWork"),
            ("wiki:Q44578", "wiki:CreativeWork"),
            ("wiki:Q25191", "wiki:Human"),
            ("wiki:Q42574", "wiki:Human"),
            ("wiki:Q38111", "wiki:Human"),
        ],
    )
    gold_entities = [
        ("imdb:inception", "wiki:Q25188"),
        ("imdb:interstellar", "wiki:Q13417189"),
        ("imdb:titanic", "wiki:Q44578"),
        ("imdb:nolan", "wiki:Q25191"),
        ("imdb:cameron", "wiki:Q42574"),
        ("imdb:dicaprio", "wiki:Q38111"),
    ]
    gold_relations = [
        ("imdb:directedBy", "wiki:director"),
        ("imdb:starring", "wiki:castMember"),
    ]
    gold_classes = [
        ("imdb:Film", "wiki:CreativeWork"),
        ("imdb:Person", "wiki:Human"),
    ]
    pair = AlignedKGPair(
        name="movies",
        kg1=kg1,
        kg2=kg2,
        entity_alignment=GoldAlignment(ElementKind.ENTITY, gold_entities),
        relation_alignment=GoldAlignment(ElementKind.RELATION, gold_relations),
        class_alignment=GoldAlignment(ElementKind.CLASS, gold_classes),
    )
    pair.split_entity_matches(SplitRatios(train=0.5, valid=0.0, test=0.5), seed=0)
    return pair


def main() -> None:
    pair = build_movie_kgs()
    print("Hand-built dataset:", pair.summary())

    # Round-trip through the OpenEA-style on-disk layout.
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "movies"
        save_openea_directory(pair, directory)
        reloaded = load_openea_directory(directory)
        print("Reloaded from disk:", reloaded.summary())
        reloaded.split_entity_matches(SplitRatios(train=0.5, valid=0.0, test=0.5), seed=0)

    daakg = DAAKG(
        pair,
        DAAKGConfig(
            base_model="transe",
            entity_dim=16,
            class_dim=4,
            alignment=AlignmentTrainingConfig(rounds=2, epochs_per_round=15, num_negatives=4,
                                              semi_threshold=0.8),
            seed=0,
        ),
    )
    daakg.fit()
    print("\nPredicted entity matches:")
    for left, right in daakg.predict_matches(ElementKind.ENTITY, threshold=0.3):
        print(f"  {left}  <->  {right}")
    print("\nPredicted relation matches:")
    for left, right in daakg.predict_matches(ElementKind.RELATION, threshold=0.3):
        print(f"  {left}  <->  {right}")


if __name__ == "__main__":
    main()
