"""Schema matching: align relations and classes of two KGs.

The motivating scenario of the paper's introduction — a KG with hundreds of
relations and classes where entity-level evidence should drive schema-level
decisions.  This example fits DAAKG on the D-Y style dataset (small class
vocabulary, asymmetric relations), compares against PARIS and the lexical
matcher, and prints the relation/class matches each method finds.

Run with::

    python examples/schema_matching.py
"""

from repro import DAAKG, DAAKGConfig, ElementKind, make_benchmark
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.baselines import LexicalMatcher, PARIS


def describe(name: str, scores: dict) -> None:
    relation = scores["relation"]
    cls = scores["class"]
    print(
        f"  {name:>8}:  relation H@1={relation.hits_at_1:.3f} F1={relation.f1:.3f}   "
        f"class H@1={cls.hits_at_1:.3f} F1={cls.f1:.3f}"
    )


def main() -> None:
    pair = make_benchmark("D-Y", seed=0)
    print("Dataset:", pair.name)
    print(f"  relations: {pair.kg1.num_relations} vs {pair.kg2.num_relations}")
    print(f"  classes:   {pair.kg1.num_classes} vs {pair.kg2.num_classes}")

    print("\nSchema alignment quality:")

    daakg = DAAKG(
        pair,
        DAAKGConfig(
            base_model="transe",
            alignment=AlignmentTrainingConfig(rounds=3, epochs_per_round=20, num_negatives=10,
                                              embedding_batches_per_round=4,
                                              embedding_batch_size=512),
            seed=0,
        ),
    )
    daakg.fit()
    describe("DAAKG", daakg.evaluate())

    paris = PARIS().fit(pair)
    describe("PARIS", paris.evaluate())

    lexical = LexicalMatcher().fit(pair)
    describe("lexical", lexical.evaluate())

    print("\nRelation matches predicted by DAAKG:")
    for left, right in daakg.predict_matches(ElementKind.RELATION, threshold=0.5)[:10]:
        print(f"  {left}  <->  {right}")

    print("\nClass matches predicted by DAAKG:")
    for left, right in daakg.predict_matches(ElementKind.CLASS, threshold=0.5)[:10]:
        print(f"  {left}  <->  {right}")


if __name__ == "__main__":
    main()
