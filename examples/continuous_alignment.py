"""Continuous alignment: ingest a delta, retrain only what it touched, hot-swap.

The end-to-end incremental-update path over a drifting knowledge-graph pair:

1. train a partition-parallel alignment campaign and serve it,
2. describe KG drift as an immutable :class:`repro.KGDelta`,
3. ``PartitionedCampaign.apply_update`` routes the delta through the
   partition membership, warm-starts *only the touched pieces* from their
   checkpoints and re-merges,
4. ``AlignmentService.hot_swap`` publishes the refreshed state atomically —
   in-flight queries finish on the snapshot they started with,
5. a pure serving-layer ``apply_delta`` folds one more entity in without any
   retraining at all.

Run with::

    python examples/continuous_alignment.py
"""

from repro import DAAKGConfig, KGDelta, PartitionConfig, PartitionedCampaign, serve
from repro.active.loop import ActiveLearningConfig
from repro.active.pool import PoolConfig
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.datasets import make_large_world_pair
from repro.embedding.trainer import EmbeddingTrainingConfig
from repro.inference.power import InferencePowerConfig
from repro.kg.pair import SplitRatios
from repro.utils.logging import enable_console_logging


def build_campaign() -> PartitionedCampaign:
    pair = make_large_world_pair(
        160,
        num_relations=8,
        mean_out_degree=4.0,
        seed=0,
        shared_topology=True,
        num_communities=2,
        inter_community_fraction=0.05,
    )
    pair.split_entity_matches(SplitRatios(train=0.3, valid=0.1, test=0.6), seed=0)
    config = DAAKGConfig(
        base_model="transe",
        entity_dim=16,
        class_dim=4,
        pretrain=EmbeddingTrainingConfig(epochs=2),
        alignment=AlignmentTrainingConfig(
            rounds=1,
            epochs_per_round=4,
            num_negatives=4,
            embedding_batches_per_round=1,
            embedding_batch_size=256,
        ),
        pool=PoolConfig(top_n=10),
        inference=InferencePowerConfig(max_hops=2, power_threshold=0.5),
        similarity_backend="sharded",
        seed=0,
    )
    return PartitionedCampaign(
        pair,
        config,
        strategy="uncertainty",
        active_config=ActiveLearningConfig(batch_size=10, num_batches=1, fine_tune_epochs=2),
        partition=PartitionConfig(num_partitions=2, workers=1, executor="serial"),
    )


def drift_delta(campaign: PartitionedCampaign) -> KGDelta:
    """One localised drift batch: a new gold-linked entity pair in piece 0."""
    piece = campaign.partition.pieces[0]
    anchor_1 = piece.pair.kg1.entities[0]
    anchor_2 = piece.pair.kg2.entities[0]
    relation_1 = campaign.dataset.kg1.relations[0]
    relation_2 = campaign.dataset.kg2.relations[0]
    return KGDelta(
        added_entities_1=("lw1:fresh",),
        added_entities_2=("lw2:fresh",),
        added_triples_1=(("lw1:fresh", relation_1, anchor_1),),
        added_triples_2=(("lw2:fresh", relation_2, anchor_2),),
        added_gold_links=(("lw1:fresh", "lw2:fresh"),),
    )


def main() -> None:
    enable_console_logging()

    # 1. Train the campaign and put a service in front of the merged state.
    campaign = build_campaign()
    campaign.run()
    service = serve(campaign)
    shape = f"{service.num_entities(1)}x{service.num_entities(2)}"
    print(f"Serving {shape} entities, token {service.state_token}")

    # 2-3. Ingest a delta: routing retrains only the touched piece, warm.
    delta = drift_delta(campaign)
    report = campaign.apply_update(delta)
    statuses = {piece.index: piece.status for piece in report.result.partition_results}
    print(f"Delta {report.delta_summary} touched pieces {list(report.touched)}")
    print(f"Piece statuses after the warm retrain: {statuses}")
    print(f"Routing took {report.route_seconds * 1e3:.1f} ms, update {report.seconds:.1f} s")

    # 4. Publish the refreshed campaign without dropping a request.
    before = service.state_token
    after = service.hot_swap(campaign)
    ranked = service.top_k_alignments(["lw1:fresh"], k=3)[0]
    best = ", ".join(f"{name} ({score:.3f})" for name, score in ranked)
    print(f"Hot-swapped {before} -> {after}; lw1:fresh now answers: {best}")

    # 5. Serving-layer growth without retraining: fold one entity straight
    # into the merged snapshot.
    relation_2 = campaign.dataset.kg2.relations[0]
    fold = KGDelta.single_entity("lw2:cold", [("lw2:cold", relation_2, "lw2:fresh")], side=2)
    fold_report = service.apply_delta(fold)[0]
    score = service.score_pairs([("lw1:fresh", "lw2:cold")])[0]
    fold_ms = fold_report.seconds * 1e3
    print(f"Folded lw2:cold in {fold_ms:.1f} ms without retraining")
    print(f"score(lw1:fresh, lw2:cold) = {score:.3f}")


if __name__ == "__main__":
    main()
