"""Concurrent serving under load: dispatcher, backpressure, zero-downtime swap.

Fits a small DAAKG pipeline, freezes it into an :class:`AlignmentService`,
and puts a :class:`ServingFrontend` dispatcher in front of it:

1. concurrent caller threads submit top-k and pair-score queries through the
   frontend's bounded admission queue; worker threads batch and resolve them
   (deadline-aware: a lone request waits at most half its latency budget),
2. a deliberate burst past the queue limit shows explicit load-shedding —
   a typed :class:`BackpressureError` instead of unbounded queueing,
3. the serving state is hot-swapped and a brand-new entity folded in *while
   the query storm is running* — zero request errors, and the state token
   in every cache key proves no stale result crossed the swap,
4. ``service.metrics()`` and ``frontend.stats()`` show what the run did.

Run with::

    python examples/async_serving.py
"""

import threading
import time

import numpy as np

from repro import DAAKG, DAAKGConfig, KGDelta, make_benchmark
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.embedding.trainer import EmbeddingTrainingConfig
from repro.serving import (
    AlignmentService,
    BackpressureError,
    FrontendConfig,
    ServingFrontend,
)
from repro.utils.logging import enable_console_logging


def fit_pipeline() -> DAAKG:
    pair = make_benchmark("D-W", scale=0.15, seed=0)
    config = DAAKGConfig(
        base_model="transe",
        entity_dim=16,
        class_dim=4,
        pretrain=EmbeddingTrainingConfig(epochs=3),
        alignment=AlignmentTrainingConfig(
            rounds=1,
            epochs_per_round=8,
            num_negatives=5,
            embedding_batches_per_round=2,
            embedding_batch_size=256,
        ),
        seed=0,
    )
    pipeline = DAAKG(pair, config)
    pipeline.fit()
    return pipeline


def main() -> None:
    enable_console_logging()
    pipeline = fit_pipeline()
    service = AlignmentService.from_pipeline(pipeline, max_batch=64, cache_size=2048)
    kg1, kg2 = pipeline.kg1, pipeline.kg2

    # ------------------------------------------------ 1. storm through the
    # dispatcher: three caller threads submit windows of queries and wait on
    # their tickets; worker threads flush deadline-aware batches.
    frontend = ServingFrontend(
        service,
        FrontendConfig(num_workers=2, max_queue_depth=2048, default_deadline_ms=25),
    )
    errors: list[Exception] = []
    resolved = [0]
    stop = threading.Event()

    def storm(seed: int) -> None:
        rng = np.random.default_rng(seed)
        count = 0
        while not stop.is_set():
            window = [
                frontend.submit_top_k(kg1.entities[i], k=5)
                for i in rng.integers(0, kg1.num_entities, 32)
            ]
            left = kg1.entities[int(rng.integers(kg1.num_entities))]
            right = kg2.entities[int(rng.integers(kg2.num_entities))]
            window.append(frontend.submit_score(left, right))
            for ticket in window:
                try:
                    ticket.result(timeout=10)
                    count += 1
                except Exception as exc:  # noqa: BLE001 - tallied below
                    errors.append(exc)
        resolved[0] += count

    tokens = {service.state_token}
    with frontend:
        threads = [threading.Thread(target=storm, args=(seed,)) for seed in range(3)]
        for thread in threads:
            thread.start()

        # -------------------------------------------- 2. zero-downtime swap
        # and fold-in while the storm runs: queries in flight finish against
        # the snapshot they started with, new batches see the new state.
        time.sleep(0.3)
        tokens.add(service.hot_swap(pipeline))
        victim = max(range(kg2.num_entities), key=kg2.entity_degree)
        triples = [
            ("demo:new-entity", kg2.relations[r], kg2.entities[t])
            for r, t in kg2.out_edges(victim)[:6]
        ]
        delta = KGDelta.single_entity("demo:new-entity", triples)
        tokens.add(service.apply_delta(delta)[-1].token)
        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join()
        frontend.drain(timeout=30)

        print(f"storm resolved {resolved[0]:,} queries with {len(errors)} errors")
        print(f"state tokens served: {len(tokens)} (initial, hot-swap, fold-in)")
        print(
            "folded-in entity scores:",
            np.round(service.score_pairs([(kg1.entities[0], "demo:new-entity")]), 4),
        )

        # ---------------------------------------- 3. explicit backpressure:
        # a burst past the queue limit is shed with a typed error, not
        # queued into unbounded latency.
        shed = 0
        last: BackpressureError | None = None
        burst = [kg1.entities[i % kg1.num_entities] for i in range(4096)]
        for uri in burst:
            try:
                frontend.submit_top_k(uri, k=5, deadline_ms=50)
            except BackpressureError as exc:
                shed += 1
                last = exc
        frontend.drain(timeout=30)
        if shed:
            print(f"burst of {len(burst)} sheds {shed} requests: {last}")

    # ------------------------------------------------ 4. telemetry: the
    # frontend publishes into the service's always-on registry, so one
    # snapshot covers both layers.
    metrics = service.metrics()
    service_keys = (
        "requests_total",
        "qps",
        "p50_latency_ms",
        "p99_latency_ms",
        "cache_hit_ratio",
        "hot_swaps",
        "fold_ins",
    )
    print("\nservice.metrics():")
    for key in service_keys:
        value = metrics[key]
        rendered = f"{value:.4f}" if isinstance(value, float) else str(value)
        print(f"  {key:>16}: {rendered}")
    print("frontend.stats():")
    for key, value in frontend.stats().items():
        print(f"  {key:>18}: {value}")


if __name__ == "__main__":
    main()
