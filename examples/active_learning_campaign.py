"""Active learning campaign: spend a labelling budget wisely.

Starts from a small seed of labelled entity matches (5% of the gold matches),
then runs several batches of active learning, comparing the paper's
inference-power-based selection (DAAKG) against random and uncertainty
sampling.  Prints the progressive H@1/F1 after every batch — the data behind
Figure 5 of the paper.

Run with::

    python examples/active_learning_campaign.py
"""

from repro import DAAKG, DAAKGConfig, make_benchmark
from repro.active import ActiveLearningConfig, PoolConfig, create_strategy
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.inference.power import InferencePowerConfig
from repro.kg.pair import SplitRatios
from repro.utils.logging import enable_console_logging


def run_campaign(strategy_name: str, seed: int = 0) -> list:
    pair = make_benchmark("D-W", split=SplitRatios(train=0.05, valid=0.05, test=0.9), seed=seed)
    config = DAAKGConfig(
        base_model="transe",
        alignment=AlignmentTrainingConfig(rounds=2, epochs_per_round=15, num_negatives=10,
                                          embedding_batches_per_round=4, embedding_batch_size=512),
        pool=PoolConfig(top_n=50),
        inference=InferencePowerConfig(max_hops=2, power_threshold=0.5),
        seed=seed,
    )
    daakg = DAAKG(pair, config)
    daakg.fit()

    loop = daakg.active_learning(
        strategy=create_strategy(strategy_name),
        config=ActiveLearningConfig(
            batch_size=40,
            num_batches=3,
            fine_tune_epochs=10,
            pool=config.pool,
            inference=config.inference,
        ),
    )
    return loop.run()


def main() -> None:
    enable_console_logging()
    for strategy in ("random", "uncertainty", "daakg"):
        print(f"\n=== strategy: {strategy} ===")
        records = run_campaign(strategy)
        for record in records:
            print(
                f"  batch {record.batch_index}: labels={record.labels_used:4d} "
                f"matched={record.matches_labelled:4d} "
                f"entity H@1={record.entity_scores.hits_at_1:.3f} "
                f"F1={record.entity_scores.f1:.3f} "
                f"({record.seconds:.1f}s)"
            )


if __name__ == "__main__":
    main()
