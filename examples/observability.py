"""Observability end-to-end: metrics, traces, and fleet telemetry.

Enables ``repro.obs``, runs a small partition-parallel campaign on the
process executor, and shows everything the instrumentation produced:

1. the merged metrics snapshot — trainer step timings, similarity cache
   hits, ANN builds and per-piece executor lifecycle, folded across the
   worker-process boundary exactly (fixed-bucket histograms sum per slot),
2. the Prometheus text exposition a scraper would collect,
3. the span trace (nested spans with monotonic durations) as JSONL,
4. the served model's own request histogram via ``AlignmentService.metrics()``.

Run with::

    python examples/observability.py

Artifacts (``metrics.prom``, ``metrics.jsonl``, ``trace.jsonl``) are written
to a temp directory; set ``REPRO_OBS_DIR`` instead to export them from any
run without code changes.
"""

import tempfile
from pathlib import Path

import repro.obs as obs
from repro import DAAKGConfig, PartitionConfig, PartitionedCampaign, make_benchmark
from repro.active.loop import ActiveLearningConfig
from repro.active.pool import PoolConfig
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.embedding.trainer import EmbeddingTrainingConfig
from repro.serving import AlignmentService
from repro.utils.logging import enable_console_logging


def main() -> None:
    enable_console_logging()
    obs.enable()  # equivalently: export REPRO_OBS=1

    # 1. A small partitioned campaign on the process executor — each worker
    #    collects its own piece-scoped metrics and trace, serialized into the
    #    piece's checkpoint directory and folded back into this process.
    pair = make_benchmark("D-W", scale=0.2, seed=0)
    config = DAAKGConfig(
        base_model="transe",
        entity_dim=16,
        class_dim=4,
        pretrain=EmbeddingTrainingConfig(epochs=3),
        alignment=AlignmentTrainingConfig(
            rounds=1,
            epochs_per_round=8,
            num_negatives=5,
            embedding_batches_per_round=2,
            embedding_batch_size=256,
        ),
        pool=PoolConfig(top_n=20),
        partition=PartitionConfig(num_partitions=2, workers=2, executor="process"),
        seed=0,
    )
    campaign = PartitionedCampaign(
        pair,
        config,
        strategy="uncertainty",
        active_config=ActiveLearningConfig(batch_size=10, num_batches=2, fine_tune_epochs=5),
    )
    campaign.run()

    # 2. The merged registry now covers the driver AND every worker piece.
    snap = obs.snapshot()
    print(f"\n=== merged metrics ({len(campaign.piece_obs)} pieces folded) ===")
    for key in sorted(snap["counters"]):
        print(f"  {key} = {snap['counters'][key]['value']:g}")
    step_hist = next(
        (entry for k, entry in snap["histograms"].items() if k.startswith("trainer.step")),
        None,
    )
    if step_hist is not None:
        print(f"  trainer.step.seconds: count={step_hist['count']} sum={step_hist['sum']:.3f}s")

    # 3. Prometheus exposition + JSONL artifacts.
    workdir = Path(tempfile.mkdtemp(prefix="daakg-obs-"))
    paths = obs.export_artifacts(workdir)
    print("\n=== Prometheus exposition (first 20 lines) ===")
    prom = Path(paths["metrics.prom"]).read_text().splitlines()
    print("\n".join(prom[:20]))
    print(f"... ({len(prom)} lines total)")
    print("\n=== trace ===")
    events = obs.events()
    print(f"{len(events)} events; executor lifecycle:")
    for event in events:
        if event["name"].startswith("executor.piece"):
            print(f"  {event['name']:<26} pid={event['pid']} attrs={event['attrs']}")
    print(f"artifacts written to {workdir}")

    # 4. Serving telemetry comes from the service's own always-on registry.
    service = AlignmentService.from_campaign(campaign)
    uris = list(campaign.dataset.kg1.entities[:25])
    service.top_k_alignments(uris, k=5)
    service.top_k_alignments(uris, k=5)  # second pass hits the LRU
    metrics = service.metrics()
    print("\n=== service.metrics() ===")
    for key in ("requests_total", "qps", "p50_latency_ms", "p99_latency_ms", "cache_hit_ratio"):
        value = metrics[key]
        print(f"  {key} = {value:.4g}" if isinstance(value, float) else f"  {key} = {value}")


if __name__ == "__main__":
    main()
