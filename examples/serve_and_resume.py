"""Checkpointing and serving: fit → save → kill → resume → serve → fold in.

Walks the full persistence + serving lifecycle:

1. fit a DAAKG pipeline and checkpoint it (``DAAKG.save``),
2. start an active-learning campaign with autosave and "kill" it mid-budget,
3. resume the campaign from its autosave (``ActiveLearningLoop.resume``) —
   the resumed records match what an uninterrupted run would produce,
4. serve alignment queries from the checkpoint (``AlignmentService``),
5. fold a brand-new entity into the serving state without recomputing the
   similarity matrices.

Run with::

    python examples/serve_and_resume.py
"""

import tempfile
from pathlib import Path

from repro import DAAKG, DAAKGConfig, KGDelta, make_benchmark
from repro.active.loop import ActiveLearningConfig, ActiveLearningLoop
from repro.active.pool import PoolConfig
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.embedding.trainer import EmbeddingTrainingConfig
from repro.serving import AlignmentService
from repro.utils.logging import enable_console_logging


def main() -> None:
    enable_console_logging()
    workdir = Path(tempfile.mkdtemp(prefix="daakg-"))

    # 1. Fit a small pipeline and checkpoint it.
    pair = make_benchmark("D-W", scale=0.3, seed=0)
    config = DAAKGConfig(
        base_model="transe",
        entity_dim=16,
        class_dim=4,
        pretrain=EmbeddingTrainingConfig(epochs=4),
        alignment=AlignmentTrainingConfig(rounds=2, epochs_per_round=10, num_negatives=5,
                                          embedding_batches_per_round=2, embedding_batch_size=256),
        pool=PoolConfig(top_n=20),
        seed=0,
    )
    daakg = DAAKG(pair, config).fit()
    fitted_ckpt = workdir / "fitted"
    daakg.save(fitted_ckpt)
    print(f"\nFitted pipeline checkpointed to {fitted_ckpt}")
    print("Entity H@1 before round-trip:", f"{daakg.evaluate()['entity'].hits_at_1:.3f}")

    # 2. A campaign with autosave, killed after 1 of 3 batches.
    campaign_ckpt = workdir / "campaign"
    loop_config = ActiveLearningConfig(batch_size=25, num_batches=3,
                                       fine_tune_epochs=5, pool=PoolConfig(top_n=20))
    loop = DAAKG.load(fitted_ckpt).active_learning("uncertainty", loop_config)
    loop.autosave_path = str(campaign_ckpt)
    loop.run(max_batches=1)
    print(f"\nCampaign 'killed' after batch {loop.records[-1].batch_index}; "
          f"autosave at {campaign_ckpt}")
    del loop  # only the autosave survives the "crash"

    # 3. Resume: the loop continues at batch 1 with identical state.
    resumed = ActiveLearningLoop.resume(campaign_ckpt)
    records = resumed.run()
    print(f"Resumed campaign finished: {len(records)} records, "
          f"final entity F1 = {records[-1].entity_scores.f1:.3f}")

    # 4. Serve alignment queries from the frozen checkpoint.
    service = AlignmentService.from_checkpoint(fitted_ckpt)
    queries = list(daakg.kg1.entities[:3])
    for uri, ranked in zip(queries, service.top_k_alignments(queries, k=3)):
        best = ", ".join(f"{name} ({score:.3f})" for name, score in ranked)
        print(f"  {uri}  ->  {best}")
    print("Service state token:", service.state_token)

    # 5. Fold in a new KG2 entity (its triples reference existing entities).
    kg2 = daakg.kg2
    hub = max(range(kg2.num_entities), key=kg2.entity_degree)
    triples = [("brand:new-entity", kg2.relations[r], kg2.entities[t])
               for r, t in kg2.out_edges(hub)[:5]]
    report = service.apply_delta(
        KGDelta.single_entity("brand:new-entity", triples))[0]
    print(f"\nFolded in 'brand:new-entity' from {report.num_triples} triples "
          f"in {report.seconds * 1e3:.2f} ms (new token {report.token})")
    score = service.score_pairs([(daakg.kg1.entities[0], "brand:new-entity")])[0]
    print(f"Query against the folded-in entity works: score = {score:.3f}")


if __name__ == "__main__":
    main()
