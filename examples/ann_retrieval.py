"""Sub-linear candidate retrieval with the ANN similarity backend.

Walks the ANN backend's lifecycle on a synthetic world pair whose entity
embeddings are *clustered* (a mixture of Gaussians — the geometry trained
alignment models produce, and the one inverted-list indexes exploit):

1. build an alignment model and pin its engine to the ``ann`` backend with
   knobs sized for this catalogue,
2. answer a top-k query batch from the per-channel IVF indexes and compare
   against the exact streamed kernel — recall is high, and every returned
   *score* is bit-identical to ``CosineChannels.pair_values`` because the
   candidate union is re-ranked exactly,
3. retrieve threshold candidates and check the set matches the exact scan,
4. export a frozen serving view (``AnnView``) and fold a new column in —
   appended tails are served exactly,
5. show the exact fallback: default knobs refuse to index a small
   catalogue and serve the streamed kernels instead.

Run with::

    python examples/ann_retrieval.py
"""

import numpy as np

from repro.alignment import SimilarityEngine
from repro.alignment.model import JointAlignmentModel
from repro.datasets import make_large_world_pair
from repro.embedding import TransE
from repro.kg.elements import ElementKind
from repro.runtime import AnnParams, create_backend, stream_topk, topk_recall

NUM_ENTITIES = 2048
EMBED_DIM = 32
NUM_CLUSTERS = 48
BLOCK = 1024
TOP_K = 10


def clustered(num: int, rng: np.random.Generator) -> np.ndarray:
    centers = rng.normal(size=(NUM_CLUSTERS, EMBED_DIM))
    return centers[rng.integers(0, NUM_CLUSTERS, size=num)] + 0.25 * rng.normal(
        size=(num, EMBED_DIM)
    )


def build_model() -> JointAlignmentModel:
    pair = make_large_world_pair(NUM_ENTITIES, seed=0)
    rng = np.random.default_rng(7)
    model1 = TransE(pair.kg1, dim=EMBED_DIM, rng=0)
    model2 = TransE(pair.kg2, dim=EMBED_DIM, rng=1)
    model1.entity_embeddings.weight.data[:] = clustered(pair.kg1.num_entities, rng)
    model2.entity_embeddings.weight.data[:] = clustered(pair.kg2.num_entities, rng)
    model1.mark_parameters_mutated()
    model2.mark_parameters_mutated()
    model = JointAlignmentModel(pair, model1, model2, rng=0)
    model.set_landmarks(pair.entity_match_ids()[:128])
    return model


def main() -> None:
    model = build_model()

    # 1. Pin the engine to the ANN backend (config would spell this
    #    DAAKGConfig(similarity_backend="ann", ann_nprobe=8, ...); the
    #    REPRO_SIMILARITY_ANN_* env vars override knobs per field).
    engine = SimilarityEngine(model, block_size=BLOCK)
    engine.ann_params = AnnParams(nprobe=8, min_recall=0.95)
    engine.backend = create_backend(engine, "ann")
    model.similarity = engine

    channels = engine.channels(ElementKind.ENTITY)
    indexes, nprobe = engine.backend._index_for(ElementKind.ENTITY)
    print(f"indexed {channels.num_cols} columns x {len(indexes)} channels, nprobe={nprobe}")

    # 2. Top-k through the index vs the exact streamed kernel.
    query = np.linspace(0, channels.num_rows - 1, 256).astype(np.int64)
    ann_idx, ann_val = engine.backend.query_top_k(ElementKind.ENTITY, query, TOP_K)
    exact_idx, exact_val = stream_topk(channels.select_rows(query), TOP_K, BLOCK, 1)
    recall = topk_recall(exact_idx, ann_idx, exact_val, ann_val)
    pair_exact = np.array_equal(
        ann_val.ravel(),
        channels.pair_values(np.repeat(query, TOP_K), ann_idx.ravel()),
    )
    print(f"top-{TOP_K} recall vs exact: {recall:.3f} (value-aware: bitwise ties count)")
    print(f"returned scores bit-identical to pair_values: {pair_exact}")

    # 3. Threshold candidates: the pruned scan returns the exact set.
    threshold = 0.9
    ar, ac, av = engine.backend.threshold_candidates(ElementKind.ENTITY, threshold)
    print(f"threshold >= {threshold}: {ar.size} candidate pairs (exact set, row-major)")

    # 4. A frozen serving view with exact fold-in.
    view = engine.backend.view(ElementKind.ENTITY)
    folded = view.append_col(np.full(view.num_rows, 2.0))
    idx, val = folded.top_k_for_rows(query[:4], 3)
    assert np.all(idx[:, 0] == view.num_cols) and np.all(val[:, 0] == 2.0)
    print(f"serving view: {type(view).__name__}, folded column ranks first exactly")

    # 5. Default knobs on a small catalogue: exact fallback, bit-equal to
    #    the streamed backend.
    small = SimilarityEngine(model, block_size=BLOCK)
    small.ann_params = AnnParams()  # min_index_cols=1024 is per-kind; the
    small.backend = create_backend(small, "ann")  # RELATION catalogue is tiny
    fallback = small.backend._index_for(ElementKind.RELATION) is None
    print(f"relation catalogue falls back to the exact streamed kernels: {fallback}")

    assert recall >= 0.95 and pair_exact and fallback
    print("done.")


if __name__ == "__main__":
    main()
